package tiledqr

import (
	"fmt"
	"sync"

	"tiledqr/internal/core"
	"tiledqr/internal/kernel"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
)

// Factorization is the result of Factor: the factored tiles (R plus the
// Householder representation of Q) and everything needed to apply Q.
type Factorization struct {
	grid  tile.Grid
	mat   *tile.Matrix
	dag   *core.DAG
	list  core.List
	tg    [][]float64 // GEQRT T factors per tile, indexed (i-1)*q+(k-1)
	t2    [][]float64 // TSQRT/TTQRT T factors per tile
	ib    int
	opt   Options
	trace *sched.Trace

	workPool sync.Pool // scratch slices for ApplyQ/ApplyQT/SolveLS
}

// getWork fetches a pooled scratch slice of at least n floats; putWork
// returns it. Steady-state Q applications allocate nothing.
func (f *Factorization) getWork(n int) []float64 {
	if w, ok := f.workPool.Get().(*[]float64); ok && len(*w) >= n {
		return *w
	}
	return make([]float64, n)
}

func (f *Factorization) putWork(w []float64) {
	f.workPool.Put(&w)
}

// Factor computes the tiled QR factorization A = Q·R of an m×n matrix
// (any m, n ≥ 1). A is not modified.
func Factor(a *Dense, opt Options) (*Factorization, error) {
	opt = opt.withDefaults()
	if a == nil || a.Rows < 1 || a.Cols < 1 {
		return nil, fmt.Errorf("tiledqr: cannot factor an empty matrix")
	}
	g := tile.NewGrid(a.Rows, a.Cols, opt.TileSize)
	if err := opt.validate(g.P); err != nil {
		return nil, err
	}
	list, err := core.Generate(opt.Algorithm.core(), g.P, g.Q, opt.coreOptions())
	if err != nil {
		return nil, err
	}
	f := &Factorization{
		grid: g,
		mat:  tile.FromDense((*tile.Dense)(a), opt.TileSize),
		dag:  core.BuildDAG(list, opt.Kernels.core()),
		list: list,
		ib:   opt.InnerBlock,
		opt:  opt,
	}
	f.allocT()
	work := work.Workspaces[float64](work.WorkersOrDefault(opt.Workers),
		kernel.WorkLen(opt.TileSize, f.ib))
	trace, err := sched.Run(f.dag, sched.Options{Workers: opt.Workers, Trace: opt.Trace},
		func(t int32, w int) { f.exec(t, work[w]) })
	if err != nil {
		return nil, err
	}
	f.trace = trace
	return f, nil
}

// allocT allocates the per-tile T factor storage demanded by the DAG.
func (f *Factorization) allocT() {
	p, q := f.grid.P, f.grid.Q
	f.tg = make([][]float64, p*q)
	f.t2 = make([][]float64, p*q)
	for _, t := range f.dag.Tasks {
		switch t.Kind {
		case core.KGEQRT:
			f.tg[f.tidx(t.I, t.K)] = make([]float64, f.ib*f.grid.TileCols(t.K-1))
		case core.KTSQRT, core.KTTQRT:
			f.t2[f.tidx(t.I, t.K)] = make([]float64, f.ib*f.grid.TileCols(t.K-1))
		}
	}
}

// tidx maps 1-based tile coordinates to storage index.
func (f *Factorization) tidx(i, k int) int { return (i-1)*f.grid.Q + (k - 1) }

// exec dispatches one DAG task to the corresponding tile kernel.
func (f *Factorization) exec(t int32, work []float64) {
	task := f.dag.Tasks[t]
	switch task.Kind {
	case core.KGEQRT:
		a := f.mat.Tile(task.I-1, task.K-1)
		kernel.GEQRT(a.Rows, a.Cols, f.ib, a.Data, a.Stride,
			f.tg[f.tidx(task.I, task.K)], a.Cols, work)
	case core.KUNMQR:
		v := f.mat.Tile(task.I-1, task.K-1)
		c := f.mat.Tile(task.I-1, task.J-1)
		kernel.UNMQR(true, v.Rows, min(v.Rows, v.Cols), f.ib, v.Data, v.Stride,
			f.tg[f.tidx(task.I, task.K)], v.Cols, c.Data, c.Stride, c.Cols, work)
	case core.KTSQRT, core.KTTQRT:
		a := f.mat.Tile(task.Piv-1, task.K-1)
		b := f.mat.Tile(task.I-1, task.K-1)
		m, l := b.Rows, 0
		if task.Kind == core.KTTQRT {
			m = min(b.Rows, a.Cols)
			l = m
		}
		kernel.TPQRT(m, a.Cols, l, f.ib, a.Data, a.Stride, b.Data, b.Stride,
			f.t2[f.tidx(task.I, task.K)], a.Cols, work)
	case core.KTSMQR, core.KTTMQR:
		v := f.mat.Tile(task.I-1, task.K-1)
		c1 := f.mat.Tile(task.Piv-1, task.J-1)
		c2 := f.mat.Tile(task.I-1, task.J-1)
		kRef := f.grid.TileCols(task.K - 1)
		m, l := v.Rows, 0
		if task.Kind == core.KTTMQR {
			m = min(v.Rows, kRef)
			l = m
		}
		kernel.TPMQRT(true, m, kRef, l, f.ib, v.Data, v.Stride,
			f.t2[f.tidx(task.I, task.K)], kRef,
			c1.Data, c1.Stride, c2.Data, c2.Stride, c2.Cols, work)
	default:
		panic(fmt.Sprintf("tiledqr: unknown task kind %v", task.Kind))
	}
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *Factorization) R() *Dense {
	k := min(f.grid.M, f.grid.N)
	r := NewDense(k, f.grid.N)
	nb := f.grid.NB
	for i := 0; i < k; i++ {
		for j := i; j < f.grid.N; j++ {
			r.Set(i, j, f.mat.Tile(i/nb, j/nb).At(i%nb, j%nb))
		}
	}
	return r
}

// ApplyQT overwrites b (m×nrhs) with Qᵀ·b by replaying the factorization's
// transformations in execution order.
func (f *Factorization) ApplyQT(b *Dense) error {
	return f.apply(b, true)
}

// ApplyQ overwrites b (m×nrhs) with Q·b.
func (f *Factorization) ApplyQ(b *Dense) error {
	return f.apply(b, false)
}

func (f *Factorization) apply(b *Dense, trans bool) error {
	if b == nil {
		return fmt.Errorf("tiledqr: ApplyQ: b must not be nil")
	}
	if b.Rows != f.grid.M {
		return fmt.Errorf("tiledqr: ApplyQ: b has %d rows, want %d", b.Rows, f.grid.M)
	}
	bd := (*tile.Dense)(b)
	nrhs := b.Cols
	work := f.getWork(f.ib * max(nrhs, 1))
	defer f.putWork(work)
	// View of b's tile row i (1-based).
	rowView := func(i int) *tile.Dense {
		return bd.View((i-1)*f.grid.NB, 0, f.grid.TileRows(i-1), nrhs)
	}
	applyOne := func(task core.Task) {
		switch task.Kind {
		case core.KGEQRT:
			v := f.mat.Tile(task.I-1, task.K-1)
			c := rowView(task.I)
			kernel.UNMQR(trans, v.Rows, min(v.Rows, v.Cols), f.ib, v.Data, v.Stride,
				f.tg[f.tidx(task.I, task.K)], v.Cols, c.Data, c.Stride, nrhs, work)
		case core.KTSQRT, core.KTTQRT:
			v := f.mat.Tile(task.I-1, task.K-1)
			c1 := rowView(task.Piv)
			c2 := rowView(task.I)
			kRef := f.grid.TileCols(task.K - 1)
			m, l := v.Rows, 0
			if task.Kind == core.KTTQRT {
				m = min(v.Rows, kRef)
				l = m
			}
			kernel.TPMQRT(trans, m, kRef, l, f.ib, v.Data, v.Stride,
				f.t2[f.tidx(task.I, task.K)], kRef,
				c1.Data, c1.Stride, c2.Data, c2.Stride, nrhs, work)
		}
	}
	if trans {
		for _, task := range f.dag.Tasks {
			applyOne(task)
		}
	} else {
		for t := len(f.dag.Tasks) - 1; t >= 0; t-- {
			applyOne(f.dag.Tasks[t])
		}
	}
	return nil
}

// Q returns the full m×m orthogonal factor (built by applying Q to the
// identity; O(m³) work — prefer ThinQ or ApplyQ for large m).
func (f *Factorization) Q() *Dense {
	q := Identity(f.grid.M)
	if err := f.ApplyQ(q); err != nil {
		panic(err) // identity always has the right shape
	}
	return q
}

// ThinQ returns the first min(m,n) columns of Q (the orthonormal basis of
// A's column span when A has full column rank).
func (f *Factorization) ThinQ() *Dense {
	k := min(f.grid.M, f.grid.N)
	e := NewDense(f.grid.M, k)
	for i := 0; i < k; i++ {
		e.Set(i, i, 1)
	}
	if err := f.ApplyQ(e); err != nil {
		panic(err)
	}
	return e
}

// SolveLS solves the least-squares problem min‖A·x − b‖₂ for each column of
// b (m×nrhs), returning the n×nrhs solution. Requires m ≥ n and a
// nonsingular R.
func (f *Factorization) SolveLS(b *Dense) (*Dense, error) {
	m, n := f.grid.M, f.grid.N
	if m < n {
		return nil, fmt.Errorf("tiledqr: SolveLS needs m ≥ n (have %d×%d)", m, n)
	}
	if b == nil {
		return nil, fmt.Errorf("tiledqr: SolveLS: b must not be nil")
	}
	if b.Rows != m {
		return nil, fmt.Errorf("tiledqr: SolveLS: b has %d rows, want %d", b.Rows, m)
	}
	qtb := b.Clone()
	if err := f.ApplyQT(qtb); err != nil {
		return nil, err
	}
	r := f.R()
	rd := (*tile.Dense)(r)
	x := NewDense(n, b.Cols)
	// Row-oriented back-substitution (shared with the streaming path); the
	// solution column lives in a pooled contiguous scratch until written
	// back.
	wbuf := f.getWork(n)
	defer f.putWork(wbuf)
	if err := work.SolveUpper(n, b.Cols, rd.Data, rd.Stride, qtb.Data, qtb.Stride,
		x.Data, x.Stride, wbuf[:n], vec.Dot); err != nil {
		return nil, err
	}
	return x, nil
}

// Trace returns the execution trace (nil unless Options.Trace was set).
func (f *Factorization) Trace() *sched.Trace { return f.trace }

// GanttChart renders an ASCII Gantt chart of the traced execution (one row
// per worker, `width` time columns). Requires Options.Trace.
func (f *Factorization) GanttChart(width int) string {
	if f.trace == nil || f.trace.Spans == nil {
		return "(run with Options.Trace to record a Gantt chart)\n"
	}
	return f.trace.Gantt(f.dag, width)
}

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Options.Trace.
func (f *Factorization) Utilization() sched.Utilization {
	if f.trace == nil {
		return sched.Utilization{}
	}
	return f.trace.Utilization()
}

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *Factorization) TaskCount() int { return f.dag.NumTasks() }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *Factorization) Grid() (p, q, nb int) { return f.grid.P, f.grid.Q, f.grid.NB }
