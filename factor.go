package tiledqr

import (
	"context"
	"fmt"

	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// engineConfig validates the (defaulted) options against the matrix shape
// and lowers them, with the per-call context, to the engine's configuration.
func engineConfig(ctx context.Context, m, n int, opt Options) (engine.Config, error) {
	g := tile.NewGrid(m, n, opt.TileSize)
	if err := opt.validate(g.P); err != nil {
		return engine.Config{}, err
	}
	return engine.Config{
		Algorithm:   opt.Algorithm.core(),
		Kernels:     opt.Kernels.core(),
		CoreOpts:    opt.coreOptions(),
		TileSize:    opt.TileSize,
		InnerBlock:  opt.InnerBlock,
		Env:         opt.execEnv(),
		Trace:       opt.Trace,
		Ctx:         ctx,
		CheckHealth: opt.CheckHealth,
	}, nil
}

// factorEngine resolves AlgorithmAuto, applies defaults, validates, and
// runs the generic engine — the single code path behind Factor, Factor32,
// CFactor and FactorComplex (and their Ctx variants).
func factorEngine[T vec.Scalar](ctx context.Context, a *tile.Dense[T], opt Options) (*engine.Factorization[T], error) {
	if a == nil || a.Rows < 1 || a.Cols < 1 {
		return nil, fmt.Errorf("tiledqr: cannot factor an empty matrix")
	}
	opt, err := resolveAuto[T](a.Rows, a.Cols, opt)
	if err != nil {
		return nil, err
	}
	cfg, err := engineConfig(ctx, a.Rows, a.Cols, opt)
	if err != nil {
		return nil, err
	}
	return engine.Factor(a, cfg)
}

// factorEngineInto is the reuse-path sibling of factorEngine: it factors a
// into an existing engine factorization, reusing its storage when shape
// and structural options match.
func factorEngineInto[T vec.Scalar](ctx context.Context, f *engine.Factorization[T], a *tile.Dense[T], opt Options) error {
	if a == nil || a.Rows < 1 || a.Cols < 1 {
		return fmt.Errorf("tiledqr: cannot factor an empty matrix")
	}
	opt, err := resolveAuto[T](a.Rows, a.Cols, opt)
	if err != nil {
		return err
	}
	cfg, err := engineConfig(ctx, a.Rows, a.Cols, opt)
	if err != nil {
		return err
	}
	return engine.FactorInto(f, a, cfg)
}

// Factorization is the result of Factor: the factored tiles (R plus the
// Householder representation of Q) and everything needed to apply Q. It is
// a thin float64 instantiation of the generic engine shared by all four
// precisions (see also Factor32, CFactor, FactorComplex).
type Factorization struct {
	e *engine.Factorization[float64]
}

// Factor computes the tiled QR factorization A = Q·R of an m×n matrix
// (any m, n ≥ 1). A is not modified.
func Factor(a *Dense, opt Options) (*Factorization, error) {
	return FactorCtx(nil, a, opt)
}

// FactorCtx is Factor under a cancellation context: when ctx is cancelled,
// in-flight kernel tasks finish, queued tasks are dropped, and the call
// returns ctx.Err(). Other factorizations sharing the runtime are
// unaffected. A nil ctx behaves exactly like Factor.
func FactorCtx(ctx context.Context, a *Dense, opt Options) (*Factorization, error) {
	e, err := factorEngine(ctx, (*tile.Dense[float64])(a), opt)
	if err != nil {
		return nil, err
	}
	return &Factorization{e: e}, nil
}

// FactorInto factors a into f, reusing f's tile storage, T factors, task
// DAG and execution plan when a's shape and the structural options
// (algorithm, kernels, tile/inner-block sizes, tree parameters) match f's
// previous factorization — the zero-allocation serving path for fleets of
// same-shaped problems. A mismatch rebuilds storage transparently. f may
// be a zero &Factorization{}. On error, any previous factorization held by
// f is gone (its storage was overwritten): f refuses to serve results
// until a subsequent FactorInto/Refactor succeeds.
func FactorInto(f *Factorization, a *Dense, opt Options) error {
	return FactorIntoCtx(nil, f, a, opt)
}

// FactorIntoCtx is FactorInto under a cancellation context (see FactorCtx).
// A cancelled execution leaves f invalid — accessors return or panic with
// the cancellation cause — until a later FactorInto/Refactor succeeds.
func FactorIntoCtx(ctx context.Context, f *Factorization, a *Dense, opt Options) error {
	if f.e == nil {
		f.e = new(engine.Factorization[float64])
	}
	return factorEngineInto(ctx, f.e, (*tile.Dense[float64])(a), opt)
}

// Refactor re-runs the factorization over new matrix data with the same
// options, reusing every internal buffer when a has the previous shape.
// Steady-state Refactor allocates O(1). After a failed or cancelled
// execution, a successful Refactor rebuilds storage and clears the sticky
// failure state.
func (f *Factorization) Refactor(a *Dense) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Refactor((*tile.Dense[float64])(a))
}

// RefactorCtx is Refactor under a cancellation context (see FactorCtx); ctx
// applies to this call only and is never retained.
func (f *Factorization) RefactorCtx(ctx context.Context, a *Dense) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.RefactorCtx(ctx, (*tile.Dense[float64])(a))
}

// Err returns the cause of the last failed or cancelled factorization
// attempt, nil while the factorization is valid.
func (f *Factorization) Err() error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Err()
}

// errRefactorEmpty is returned by Refactor on a never-factored value; the
// reuse paths start with Factor or FactorInto.
var errRefactorEmpty = fmt.Errorf("tiledqr: Refactor on an empty factorization (use Factor or FactorInto first)")

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *Factorization) R() *Dense { return (*Dense)(f.e.R()) }

// ApplyQT overwrites b (m×nrhs) with Qᵀ·b by replaying the factorization's
// transformations in execution order.
func (f *Factorization) ApplyQT(b *Dense) error {
	return f.e.Apply(nil, (*tile.Dense[float64])(b), true)
}

// ApplyQTCtx is ApplyQT under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *Factorization) ApplyQTCtx(ctx context.Context, b *Dense) error {
	return f.e.Apply(ctx, (*tile.Dense[float64])(b), true)
}

// ApplyQ overwrites b (m×nrhs) with Q·b.
func (f *Factorization) ApplyQ(b *Dense) error {
	return f.e.Apply(nil, (*tile.Dense[float64])(b), false)
}

// ApplyQCtx is ApplyQ under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *Factorization) ApplyQCtx(ctx context.Context, b *Dense) error {
	return f.e.Apply(ctx, (*tile.Dense[float64])(b), false)
}

// Q returns the full m×m orthogonal factor (built by applying Q to the
// identity; O(m³) work — prefer ThinQ or ApplyQ for large m).
func (f *Factorization) Q() *Dense { return (*Dense)(f.e.Q()) }

// ThinQ returns the first min(m,n) columns of Q (the orthonormal basis of
// A's column span when A has full column rank).
func (f *Factorization) ThinQ() *Dense { return (*Dense)(f.e.ThinQ()) }

// SolveLS solves the least-squares problem min‖A·x − b‖₂ for each column of
// b (m×nrhs), returning the n×nrhs solution. Requires m ≥ n and a
// nonsingular R.
func (f *Factorization) SolveLS(b *Dense) (*Dense, error) {
	return f.SolveLSCtx(nil, b)
}

// SolveLSCtx is SolveLS under a cancellation context (see FactorCtx).
func (f *Factorization) SolveLSCtx(ctx context.Context, b *Dense) (*Dense, error) {
	x, err := f.e.SolveLS(ctx, (*tile.Dense[float64])(b))
	if err != nil {
		return nil, err
	}
	return (*Dense)(x), nil
}

// Trace returns the execution trace (nil unless Options.Trace was set).
func (f *Factorization) Trace() *sched.Trace { return f.e.Trace() }

// GanttChart renders an ASCII Gantt chart of the traced execution (one row
// per worker, `width` time columns). Requires Options.Trace.
func (f *Factorization) GanttChart(width int) string { return f.e.GanttChart(width) }

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Options.Trace.
func (f *Factorization) Utilization() sched.Utilization { return f.e.Utilization() }

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *Factorization) TaskCount() int { return f.e.TaskCount() }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *Factorization) Grid() (p, q, nb int) { return f.e.Grid() }
