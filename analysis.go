package tiledqr

import (
	"fmt"

	"tiledqr/internal/core"
	"tiledqr/internal/model"
	"tiledqr/internal/sim"
)

// Elim is one elimination elim(i, piv, k) of an algorithm's elimination
// list: rows i and piv combine to zero tile (i, k). Indices are 1-based as
// in the paper.
type Elim struct {
	I, Piv, K int
}

// errAutoAnalysis rejects AlgorithmAuto in the analysis entry points: Auto
// is a resolution-time placeholder, not an elimination tree. Resolve the
// options first (Options.Resolve) and analyze the concrete algorithm.
func errAutoAnalysis(alg Algorithm) error {
	if alg == AlgorithmAuto {
		return fmt.Errorf("tiledqr: AlgorithmAuto has no elimination list of its own; resolve the options first (Options.Resolve) and analyze the chosen algorithm")
	}
	return nil
}

// EliminationList returns the ordered elimination list of the algorithm on
// a p×q tile grid.
func EliminationList(alg Algorithm, p, q int, opt Options) ([]Elim, error) {
	if err := errAutoAnalysis(alg); err != nil {
		return nil, err
	}
	list, err := core.Generate(alg.core(), p, q, opt.coreOptions())
	if err != nil {
		return nil, err
	}
	out := make([]Elim, len(list.Elims))
	for i, e := range list.Elims {
		out[i] = Elim{I: e.I, Piv: e.Piv, K: e.K}
	}
	return out, nil
}

// CriticalPath returns the algorithm's critical path length on a p×q tile
// grid, in units of nb³/3 flops (the unit of Table 1 of the paper), with
// unbounded processors.
func CriticalPath(alg Algorithm, p, q int, opt Options) (int, error) {
	if err := errAutoAnalysis(alg); err != nil {
		return 0, err
	}
	list, err := core.Generate(alg.core(), p, q, opt.coreOptions())
	if err != nil {
		return 0, err
	}
	return sim.CriticalPathList(list, opt.Kernels.core()), nil
}

// ZeroTimes returns the time step (same unit as CriticalPath) at which each
// sub-diagonal tile (i, k) is zeroed out, indexed [i-1][k-1] — the quantity
// tabulated in Tables 3 and 4 of the paper.
func ZeroTimes(alg Algorithm, p, q int, opt Options) ([][]int, error) {
	if err := errAutoAnalysis(alg); err != nil {
		return nil, err
	}
	list, err := core.Generate(alg.core(), p, q, opt.coreOptions())
	if err != nil {
		return nil, err
	}
	return sim.ASAP(core.BuildDAG(list, opt.Kernels.core())).ZeroTimes(), nil
}

// BestPlasmaBS sweeps PlasmaTree's domain size 1..p and returns the value
// minimizing the critical path, with that critical path. The paper performs
// this exhaustive search for every experiment because no closed form for
// the best BS is known.
func BestPlasmaBS(p, q int, kernels Kernels) (bs, cp int) {
	return sim.BestPlasmaBS(p, q, kernels.core())
}

// BestGrasapK sweeps Grasap's parameter k (the number of trailing Asap
// columns) and returns the value minimizing the critical path together with
// that critical path. The paper leaves "the best value of k as a function
// of p and q" open (§3.2); this sweep answers it computationally.
func BestGrasapK(p, q int) (k, cp int) {
	qmin := min(p, q)
	k, cp = 0, -1
	for kk := 0; kk <= qmin; kk++ {
		_, _, c := core.GrasapList(p, q, kk)
		if cp < 0 || c < cp {
			k, cp = kk, c
		}
	}
	return k, cp
}

// SimulateWorkers returns the simulated makespan (in units of nb³/3 flops)
// of the algorithm's task graph executed by `workers` processors under
// greedy list scheduling with longest-remaining-path priority.
func SimulateWorkers(alg Algorithm, p, q, workers int, opt Options) (float64, error) {
	if err := errAutoAnalysis(alg); err != nil {
		return 0, err
	}
	list, err := core.Generate(alg.core(), p, q, opt.coreOptions())
	if err != nil {
		return 0, err
	}
	d := core.BuildDAG(list, opt.Kernels.core())
	return sim.ListSchedule(d, workers, sim.UnitWeights(d), sim.PriorityBLevel), nil
}

// Predict returns the roofline performance prediction of Section 4:
// γpred = γseq·T/max(T/P, cp), where γseq is the measured sequential kernel
// speed (e.g. GFLOP/s). The result has γseq's unit.
func Predict(alg Algorithm, p, q, workers int, gammaSeq float64, opt Options) (float64, error) {
	cp, err := CriticalPath(alg, p, q, opt)
	if err != nil {
		return 0, err
	}
	return model.Predict(gammaSeq, model.TotalUnits(p, q), cp, workers), nil
}

// TotalFlops returns the floating-point operation count of a real m×n QR
// factorization, 2mn² − (2/3)n³; multiply by 4 for complex (see
// TotalFlopsComplex).
func TotalFlops(m, n int) float64 { return model.Flops(m, n) }

// TotalFlopsComplex returns the flop count of a complex m×n QR.
func TotalFlopsComplex(m, n int) float64 { return model.ComplexFlops(m, n) }

// KernelWeight returns the Table 1 weight (in units of nb³/3 flops) of the
// named kernel: "GEQRT", "UNMQR", "TSQRT", "TSMQR", "TTQRT" or "TTMQR".
func KernelWeight(name string) (int, error) {
	for k := core.Kind(0); k < 6; k++ {
		if k.String() == name {
			return k.Weight(), nil
		}
	}
	return 0, fmt.Errorf("tiledqr: unknown kernel %q", name)
}
