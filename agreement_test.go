package tiledqr

import (
	"math"
	"math/cmplx"
	"testing"
)

// Cross-domain agreement: all four precisions run the same generic engine,
// so factoring the same data must give the same R (up to per-row reflector
// signs) — exactly across the real/complex boundary at equal precision, and
// to single-precision accuracy across the 64/32-bit boundary. These tests
// sweep every parameter-free algorithm and both kernel families.

// tol32 is the single-precision agreement tolerance (~1e-5 relative, with
// headroom for the O(n) accumulation of rounding over the test shapes).
const tol32 = 2e-4

// agreementOpts enumerates the parameter-free algorithm × kernel-family
// grid of the agreement suite.
func agreementOpts() []Options {
	var opts []Options
	for _, alg := range Algorithms {
		for _, kern := range []Kernels{TT, TS} {
			opts = append(opts, Options{Algorithm: alg, Kernels: kern, TileSize: 8, InnerBlock: 3, Workers: 2})
		}
	}
	return opts
}

// rowSign returns the per-row sign aligning r's row i with the reference:
// both conventions keep a real diagonal, but independent runs may flip
// whole reflector rows.
func rowSign(refDiag, diag float64) float64 {
	if (refDiag < 0) != (diag < 0) {
		return -1
	}
	return 1
}

// TestComplexPathReproducesRealR factors a real-valued matrix through the
// complex128 path and checks that R matches the float64 path's R to 1e-12
// (up to row signs) — the two instantiations run literally the same
// generic code, so the complex arithmetic on zero imaginary parts must not
// drift.
func TestComplexPathReproducesRealR(t *testing.T) {
	const m, n = 40, 24
	a := RandomDense(m, n, 7)
	za := NewZDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			za.Set(i, j, complex(a.At(i, j), 0))
		}
	}
	for _, opt := range agreementOpts() {
		f, err := Factor(a, opt)
		if err != nil {
			t.Fatalf("%v/%v: %v", opt.Algorithm, opt.Kernels, err)
		}
		zf, err := FactorComplex(za, opt)
		if err != nil {
			t.Fatalf("%v/%v complex: %v", opt.Algorithm, opt.Kernels, err)
		}
		r, zr := f.R(), zf.R()
		for i := 0; i < r.Rows; i++ {
			s := rowSign(r.At(i, i), real(zr.At(i, i)))
			for j := i; j < n; j++ {
				zv := zr.At(i, j)
				if math.Abs(imag(zv)) > 1e-12 {
					t.Fatalf("%v/%v: complex R(%d,%d)=%v has imaginary part on real data",
						opt.Algorithm, opt.Kernels, i, j, zv)
				}
				if d := math.Abs(r.At(i, j) - s*real(zv)); d > 1e-12 {
					t.Fatalf("%v/%v: R(%d,%d) real %g vs complex %g (diff %g)",
						opt.Algorithm, opt.Kernels, i, j, r.At(i, j), s*real(zv), d)
				}
			}
		}
	}
}

// TestComplexPathReproducesRealLS runs the same cross-domain check through
// least squares, where row signs cancel: the complex path's solution of a
// real system must match the real path's to 1e-12.
func TestComplexPathReproducesRealLS(t *testing.T) {
	const m, n, nrhs = 40, 16, 2
	a := RandomDense(m, n, 9)
	b := RandomDense(m, nrhs, 10)
	za, zb := NewZDense(m, n), NewZDense(m, nrhs)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			za.Set(i, j, complex(a.At(i, j), 0))
		}
		for j := 0; j < nrhs; j++ {
			zb.Set(i, j, complex(b.At(i, j), 0))
		}
	}
	for _, opt := range agreementOpts() {
		f, err := Factor(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		x, err := f.SolveLS(b)
		if err != nil {
			t.Fatal(err)
		}
		zf, err := FactorComplex(za, opt)
		if err != nil {
			t.Fatal(err)
		}
		zx, err := zf.SolveLS(zb)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < nrhs; j++ {
				if d := cmplx.Abs(complex(x.At(i, j), 0) - zx.At(i, j)); d > 1e-12 {
					t.Fatalf("%v/%v: x(%d,%d) real %g vs complex %v", opt.Algorithm, opt.Kernels, i, j, x.At(i, j), zx.At(i, j))
				}
			}
		}
	}
}

// TestFloat32AgreesWithFloat64 factors the float32 rounding of a float64
// matrix and checks R agreement to single precision across the full
// algorithm × kernel grid.
func TestFloat32AgreesWithFloat64(t *testing.T) {
	const m, n = 40, 24
	a := RandomDense(m, n, 11)
	a32 := NewDense32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a32.Set(i, j, float32(a.At(i, j)))
		}
	}
	scale := FrobeniusNorm(a)
	for _, opt := range agreementOpts() {
		f, err := Factor(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		f32, err := Factor32(a32, opt)
		if err != nil {
			t.Fatalf("%v/%v float32: %v", opt.Algorithm, opt.Kernels, err)
		}
		r, r32 := f.R(), f32.R()
		for i := 0; i < r.Rows; i++ {
			s := rowSign(r.At(i, i), float64(r32.At(i, i)))
			for j := i; j < n; j++ {
				if d := math.Abs(r.At(i, j) - s*float64(r32.At(i, j))); d > tol32*scale {
					t.Fatalf("%v/%v: R(%d,%d) double %g vs single %g (diff %g)",
						opt.Algorithm, opt.Kernels, i, j, r.At(i, j), s*float64(r32.At(i, j)), d)
				}
			}
		}
	}
}

// TestComplex64AgreesWithComplex128 is the complex half of the
// single-vs-double agreement sweep.
func TestComplex64AgreesWithComplex128(t *testing.T) {
	const m, n = 32, 16
	za := RandomZDense(m, n, 13)
	ca := NewCDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := za.At(i, j)
			ca.Set(i, j, complex(float32(real(v)), float32(imag(v))))
		}
	}
	scale := ZFrobeniusNorm(za)
	for _, opt := range agreementOpts() {
		zf, err := FactorComplex(za, opt)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := CFactor(ca, opt)
		if err != nil {
			t.Fatalf("%v/%v complex64: %v", opt.Algorithm, opt.Kernels, err)
		}
		zr, cr := zf.R(), cf.R()
		for i := 0; i < zr.Rows; i++ {
			s := complex(rowSign(real(zr.At(i, i)), float64(real(cr.At(i, i)))), 0)
			for j := i; j < n; j++ {
				cv := cr.At(i, j)
				d := cmplx.Abs(zr.At(i, j) - s*complex(float64(real(cv)), float64(imag(cv))))
				if d > tol32*scale {
					t.Fatalf("%v/%v: R(%d,%d) double %v vs single %v (diff %g)",
						opt.Algorithm, opt.Kernels, i, j, zr.At(i, j), cv, d)
				}
			}
		}
	}
}

// checkFactorization32 mirrors checkFactorization for the float32 path.
func checkFactorization32(t *testing.T, m, n int, opt Options) {
	t.Helper()
	a := RandomDense32(m, n, int64(m*1000+n))
	f, err := Factor32(a, opt)
	if err != nil {
		t.Fatalf("%v/%v %dx%d nb=%d: %v", opt.Algorithm, opt.Kernels, m, n, opt.TileSize, err)
	}
	q := f.Q()
	r := f.R()
	rFull := NewDense32(m, n)
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < n; j++ {
			rFull.Set(i, j, r.At(i, j))
		}
	}
	if res := QRResidual32(a, q, rFull); res > tol32 {
		t.Errorf("%v/%v %dx%d: float32 residual %g", opt.Algorithm, opt.Kernels, m, n, res)
	}
	if ortho := OrthoResidual32(q); ortho > tol32 {
		t.Errorf("%v/%v %dx%d: float32 orthogonality %g", opt.Algorithm, opt.Kernels, m, n, ortho)
	}
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < min(i, r.Cols); j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("float32 R(%d,%d) = %g below the diagonal", i, j, r.At(i, j))
			}
		}
	}
}

// checkCFactorization mirrors checkFactorization for the complex64 path.
func checkCFactorization(t *testing.T, m, n int, opt Options) {
	t.Helper()
	a := RandomCDense(m, n, int64(m*1000+n))
	f, err := CFactor(a, opt)
	if err != nil {
		t.Fatalf("%v/%v %dx%d nb=%d: %v", opt.Algorithm, opt.Kernels, m, n, opt.TileSize, err)
	}
	q := f.Q()
	r := f.R()
	rFull := NewCDense(m, n)
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < n; j++ {
			rFull.Set(i, j, r.At(i, j))
		}
	}
	if res := CQRResidual(a, q, rFull); res > tol32 {
		t.Errorf("%v/%v %dx%d: complex64 residual %g", opt.Algorithm, opt.Kernels, m, n, res)
	}
	if ortho := COrthoResidual(q); ortho > tol32 {
		t.Errorf("%v/%v %dx%d: complex64 orthogonality %g", opt.Algorithm, opt.Kernels, m, n, ortho)
	}
}

// TestFactor32AllAlgorithms runs the float32 public API through the same
// agreement suite as the float64 domain: every parameter-free algorithm,
// both kernel families.
func TestFactor32AllAlgorithms(t *testing.T) {
	for _, opt := range agreementOpts() {
		checkFactorization32(t, 40, 24, opt)
	}
}

// TestCFactorAllAlgorithms runs the complex64 public API through the full
// agreement suite.
func TestCFactorAllAlgorithms(t *testing.T) {
	for _, opt := range agreementOpts() {
		checkCFactorization(t, 32, 16, opt)
	}
}

// TestFactor32Shapes covers ragged edges, wide matrices and degenerate
// shapes at float32, mirroring TestFactorShapes.
func TestFactor32Shapes(t *testing.T) {
	shapes := [][2]int{{37, 21}, {8, 8}, {5, 5}, {7, 50}, {16, 1}, {1, 16}, {1, 1}}
	for _, s := range shapes {
		opt := Options{Algorithm: Greedy, TileSize: 8, InnerBlock: 3, Workers: 2}
		checkFactorization32(t, s[0], s[1], opt)
	}
}

// TestFactor32SolveLS checks single-precision least squares against the
// double-precision solution on the same (rounded) data.
func TestFactor32SolveLS(t *testing.T) {
	const m, n = 48, 12
	a := RandomDense(m, n, 21)
	b := RandomDense(m, 1, 22)
	a32, b32 := NewDense32(m, n), NewDense32(m, 1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a32.Set(i, j, float32(a.At(i, j)))
		}
		b32.Set(i, 0, float32(b.At(i, 0)))
	}
	f, err := Factor(a, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	f32, err := Factor32(a32, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	x32, err := f32.SolveLS(b32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// LS solutions amplify rounding by the conditioning; random normal
		// systems here are well-conditioned, so 1e-3 is comfortable.
		if d := math.Abs(x.At(i, 0) - float64(x32.At(i, 0))); d > 1e-3 {
			t.Fatalf("x(%d) double %g vs single %g", i, x.At(i, 0), x32.At(i, 0))
		}
	}
}

// TestStream32MatchesFactor32 checks the float32 streaming path against a
// one-shot Factor32 over the same rows (up to row signs), and the complex64
// stream against CFactor.
func TestStream32MatchesFactor32(t *testing.T) {
	const n, rows, batch = 16, 48, 12
	a := RandomDense32(rows, n, 31)
	s, err := NewStream32(n, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < rows; r0 += batch {
		view := NewDense32(batch, n)
		for i := 0; i < batch; i++ {
			for j := 0; j < n; j++ {
				view.Set(i, j, a.At(r0+i, j))
			}
		}
		if err := s.AppendRows(view); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Factor32(a, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.R()
	if err != nil {
		t.Fatal(err)
	}
	fr := f.R()
	for i := 0; i < n; i++ {
		sgn := float32(rowSign(float64(fr.At(i, i)), float64(sr.At(i, i))))
		for j := i; j < n; j++ {
			if d := math.Abs(float64(fr.At(i, j) - sgn*sr.At(i, j))); d > tol32*float64(FrobeniusNorm32(a)) {
				t.Fatalf("stream R(%d,%d) %g vs factor %g", i, j, sr.At(i, j), fr.At(i, j))
			}
		}
	}

	ca := RandomCDense(rows, n, 32)
	cs, err := NewCStream(n, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < rows; r0 += batch {
		view := NewCDense(batch, n)
		for i := 0; i < batch; i++ {
			for j := 0; j < n; j++ {
				view.Set(i, j, ca.At(r0+i, j))
			}
		}
		if err := cs.AppendRows(view); err != nil {
			t.Fatal(err)
		}
	}
	cf, err := CFactor(ca, Options{TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	csr, err := cs.R()
	if err != nil {
		t.Fatal(err)
	}
	cfr := cf.R()
	for i := 0; i < n; i++ {
		sgn := complex(float32(rowSign(float64(real(cfr.At(i, i))), float64(real(csr.At(i, i))))), 0)
		for j := i; j < n; j++ {
			d := cfr.At(i, j) - sgn*csr.At(i, j)
			if cmplx.Abs(complex128(complex(real(d), imag(d)))) > tol32*CFrobeniusNorm(ca) {
				t.Fatalf("complex64 stream R(%d,%d) %v vs factor %v", i, j, csr.At(i, j), cfr.At(i, j))
			}
		}
	}
}
