#!/bin/sh
# serve_smoke.sh — end-to-end smoke for the QR-as-a-service stack:
# build qrserve and qrload, run the ~2s smoke scenario against a live
# server, require zero failed requests and nonzero rows/sec, then SIGTERM
# the server and require a graceful drain (503s during the grace window,
# "drained cleanly" in the log, exit code 0).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "serve-smoke: building qrserve and qrload"
$GO build -o "$tmp/qrserve" ./cmd/qrserve
$GO build -o "$tmp/qrload" ./cmd/qrload

"$tmp/qrserve" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -drain-grace 2s \
    >"$tmp/serve.log" 2>&1 &
serve_pid=$!

# The server writes its resolved address once the listener is up.
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: server never wrote its address file" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    sleep 0.05
done
addr=$(cat "$tmp/addr")
echo "serve-smoke: qrserve listening on $addr"

# qrload polls /healthz before loading, exits nonzero on any failed request
# or an all-failure run, and writes the qrperf-compatible report.
report="$tmp/load-report.json"
"$tmp/qrload" -scenario testdata/scenarios/smoke.toml \
    -url "http://$addr" -json "$report"

grep -q '"rows_per_sec": 0,' "$report" && {
    echo "serve-smoke: zero rows/sec in the load report" >&2
    exit 1
}

echo "serve-smoke: draining (SIGTERM)"
kill -TERM "$serve_pid"

# During the drain-grace window the server still answers — with 503.
if command -v curl >/dev/null 2>&1; then
    sleep 0.5
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz" || echo unreachable)
    if [ "$code" != "503" ]; then
        echo "serve-smoke: healthz during drain grace returned $code, want 503" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    echo "serve-smoke: healthz answered 503 during the drain grace window"
fi

if ! wait "$serve_pid"; then
    echo "serve-smoke: qrserve exited nonzero after SIGTERM" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
serve_pid=""
if ! grep -q "drained cleanly" "$tmp/serve.log"; then
    echo "serve-smoke: server log is missing the clean-drain marker" >&2
    cat "$tmp/serve.log" >&2
    exit 1
fi
echo "serve-smoke: ok (0 failed requests, nonzero rows/sec, clean drain)"
