#!/bin/sh
# dist_smoke.sh — end-to-end smoke for the distributed CAQR stack: build
# qrdist and qrworker, factor a 2048×256 matrix across a coordinator and 2
# real worker processes on localhost with -verify (R and x must agree with
# single-process Factor to 1e-12), then run a long multi-round job, SIGTERM
# the driver mid-flight, and require a coordinated drain ("drained
# cleanly", exit code 0).
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
dist_pid=""
cleanup() {
    [ -n "$dist_pid" ] && kill "$dist_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "dist-smoke: building qrdist and qrworker"
$GO build -o "$tmp/qrdist" ./cmd/qrdist
$GO build -o "$tmp/qrworker" ./cmd/qrworker

echo "dist-smoke: 2048x256 over coordinator + 2 worker processes, verified"
"$tmp/qrdist" -m 2048 -n 256 -workers 2 -rounds 2 -verify \
    -worker "$tmp/qrworker" | tee "$tmp/run.log"
grep -q "verify: R and x agree" "$tmp/run.log" || {
    echo "dist-smoke: verification marker missing from output" >&2
    exit 1
}

echo "dist-smoke: SIGTERM drain of a long multi-round run"
"$tmp/qrdist" -m 1024 -n 128 -nb 64 -workers 2 -rounds 100000 \
    -worker "$tmp/qrworker" >"$tmp/drain.log" 2>&1 &
dist_pid=$!
sleep 1
kill -TERM "$dist_pid"
if ! wait "$dist_pid"; then
    echo "dist-smoke: qrdist exited nonzero after SIGTERM" >&2
    cat "$tmp/drain.log" >&2
    exit 1
fi
dist_pid=""
if ! grep -q "drained cleanly" "$tmp/drain.log"; then
    echo "dist-smoke: clean-drain marker missing" >&2
    cat "$tmp/drain.log" >&2
    exit 1
fi
echo "dist-smoke: ok (verified result, clean SIGTERM drain, exit 0)"
