package tiledqr

import (
	"context"

	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
)

// Factorization32 is the float32 instantiation of the generic engine.
// Single precision halves the memory traffic per flop versus double: tiles
// stay cache-resident at twice the tile size, which is where the paper's
// communication-bound update kernels gain the most. Expect residuals around
// 1e-6·‖A‖ (versus 1e-15 for Factor); use it when throughput matters more
// than the last digits — e.g. preconditioning, sketching, or ML workloads.
type Factorization32 struct {
	e *engine.Factorization[float32]
}

// Factor32 computes the tiled QR factorization A = Q·R of an m×n float32
// matrix. A is not modified.
func Factor32(a *Dense32, opt Options) (*Factorization32, error) {
	return Factor32Ctx(nil, a, opt)
}

// Factor32Ctx is Factor32 under a cancellation context (see FactorCtx).
func Factor32Ctx(ctx context.Context, a *Dense32, opt Options) (*Factorization32, error) {
	e, err := factorEngine(ctx, (*tile.Dense[float32])(a), opt)
	if err != nil {
		return nil, err
	}
	return &Factorization32{e: e}, nil
}

// FactorInto32 factors a into f, reusing f's storage when shape and
// structural options match the previous factorization (see FactorInto).
// f may be a zero &Factorization32{}.
func FactorInto32(f *Factorization32, a *Dense32, opt Options) error {
	return FactorInto32Ctx(nil, f, a, opt)
}

// FactorInto32Ctx is FactorInto32 under a cancellation context (see
// FactorIntoCtx).
func FactorInto32Ctx(ctx context.Context, f *Factorization32, a *Dense32, opt Options) error {
	if f.e == nil {
		f.e = new(engine.Factorization[float32])
	}
	return factorEngineInto(ctx, f.e, (*tile.Dense[float32])(a), opt)
}

// Refactor re-runs the factorization over new matrix data with the same
// options, reusing every internal buffer when a has the previous shape.
// Steady-state Refactor allocates O(1).
func (f *Factorization32) Refactor(a *Dense32) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Refactor((*tile.Dense[float32])(a))
}

// RefactorCtx is Refactor under a cancellation context (see FactorCtx).
func (f *Factorization32) RefactorCtx(ctx context.Context, a *Dense32) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.RefactorCtx(ctx, (*tile.Dense[float32])(a))
}

// Err returns the cause of the last failed or cancelled factorization
// attempt, nil while the factorization is valid.
func (f *Factorization32) Err() error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Err()
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *Factorization32) R() *Dense32 { return (*Dense32)(f.e.R()) }

// ApplyQT overwrites b (m×nrhs) with Qᵀ·b.
func (f *Factorization32) ApplyQT(b *Dense32) error {
	return f.e.Apply(nil, (*tile.Dense[float32])(b), true)
}

// ApplyQTCtx is ApplyQT under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *Factorization32) ApplyQTCtx(ctx context.Context, b *Dense32) error {
	return f.e.Apply(ctx, (*tile.Dense[float32])(b), true)
}

// ApplyQ overwrites b (m×nrhs) with Q·b.
func (f *Factorization32) ApplyQ(b *Dense32) error {
	return f.e.Apply(nil, (*tile.Dense[float32])(b), false)
}

// ApplyQCtx is ApplyQ under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *Factorization32) ApplyQCtx(ctx context.Context, b *Dense32) error {
	return f.e.Apply(ctx, (*tile.Dense[float32])(b), false)
}

// Q returns the full m×m orthogonal factor.
func (f *Factorization32) Q() *Dense32 { return (*Dense32)(f.e.Q()) }

// ThinQ returns the first min(m,n) columns of Q.
func (f *Factorization32) ThinQ() *Dense32 { return (*Dense32)(f.e.ThinQ()) }

// SolveLS solves min‖A·x − b‖₂ (m ≥ n) for each column of b.
func (f *Factorization32) SolveLS(b *Dense32) (*Dense32, error) {
	return f.SolveLSCtx(nil, b)
}

// SolveLSCtx is SolveLS under a cancellation context (see FactorCtx).
func (f *Factorization32) SolveLSCtx(ctx context.Context, b *Dense32) (*Dense32, error) {
	x, err := f.e.SolveLS(ctx, (*tile.Dense[float32])(b))
	if err != nil {
		return nil, err
	}
	return (*Dense32)(x), nil
}

// Trace returns the execution trace (nil unless Options.Trace was set).
func (f *Factorization32) Trace() *sched.Trace { return f.e.Trace() }

// GanttChart renders an ASCII Gantt chart of the traced execution.
// Requires Options.Trace.
func (f *Factorization32) GanttChart(width int) string { return f.e.GanttChart(width) }

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Options.Trace.
func (f *Factorization32) Utilization() sched.Utilization { return f.e.Utilization() }

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *Factorization32) TaskCount() int { return f.e.TaskCount() }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *Factorization32) Grid() (p, q, nb int) { return f.e.Grid() }
