package tiledqr

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"tiledqr/internal/tune"
)

// isolateCalibration points the calibration cache at a per-test temp file,
// so `go test` never reads the developer's real cache (test outcomes must
// not depend on it) and never overwrites it with figures measured on a
// test-loaded machine. The in-process calibration survives across tests, so
// the kernels are micro-benchmarked at most once per test binary.
func isolateCalibration(t *testing.T) {
	t.Helper()
	t.Setenv(tune.EnvCalibration, filepath.Join(t.TempDir(), "calibration.json"))
}

// The autotuning acceptance suite: AlgorithmAuto must resolve to a
// concrete, stable tuple; factoring with Auto must be bit-for-bit the
// factorization of the resolved options; streams and every precision must
// accept Auto; and (in long mode, without the race detector) Auto's
// measured time must sit inside the envelope of the fixed algorithms.

func TestAutoResolveIsConcreteAndStable(t *testing.T) {
	isolateCalibration(t)
	auto := Options{Algorithm: AlgorithmAuto}
	r1, err := auto.Resolve(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Algorithm == AlgorithmAuto {
		t.Fatal("Resolve left AlgorithmAuto unresolved")
	}
	if r1.TileSize < 1 || r1.InnerBlock < 1 || r1.InnerBlock > r1.TileSize {
		t.Fatalf("Resolve produced invalid sizes: %+v", r1)
	}
	r2, err := auto.Resolve(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("Resolve not stable: %+v vs %+v", r1, r2)
	}

	// Pins survive resolution.
	pinned, err := Options{Algorithm: AlgorithmAuto, TileSize: 100, InnerBlock: 25}.Resolve(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.TileSize != 100 || pinned.InnerBlock != 25 {
		t.Fatalf("pinned sizes not honored: %+v", pinned)
	}

	// Non-auto options just get defaults.
	fixed, err := Options{Algorithm: Fibonacci}.Resolve(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Algorithm != Fibonacci || fixed.TileSize != DefaultTileSize {
		t.Fatalf("non-auto Resolve changed the options: %+v", fixed)
	}

	// Invalid pins are rejected, same as explicit options.
	if _, err := (Options{Algorithm: AlgorithmAuto, TileSize: 16, InnerBlock: 32}).Resolve(300, 200); err == nil {
		t.Fatal("Resolve accepted InnerBlock > pinned TileSize")
	}
	if _, err := auto.Resolve(0, 5); err == nil {
		t.Fatal("Resolve accepted an empty shape")
	}
}

// TestAutoMatchesResolvedBitForBit is the core acceptance check: Factor
// with AlgorithmAuto and zero nb/ib is the same computation as Factor with
// the hand-picked resolved tuple — identical bits in R and in Qᵀb.
func TestAutoMatchesResolvedBitForBit(t *testing.T) {
	isolateCalibration(t)
	const m, n = 200, 120
	auto := Options{Algorithm: AlgorithmAuto}
	resolved, err := auto.Resolve(m, n)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomDense(m, n, 3)
	fa, err := Factor(a, auto)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Factor(a, resolved)
	if err != nil {
		t.Fatal(err)
	}
	ra, rr := fa.R(), fr.R()
	for i := 0; i < ra.Rows; i++ {
		for j := 0; j < ra.Cols; j++ {
			if ra.At(i, j) != rr.At(i, j) {
				t.Fatalf("R differs at (%d,%d): auto %v vs resolved %v", i, j, ra.At(i, j), rr.At(i, j))
			}
		}
	}
	ba, br := RandomDense(m, 2, 9), RandomDense(m, 2, 9)
	if err := fa.ApplyQT(ba); err != nil {
		t.Fatal(err)
	}
	if err := fr.ApplyQT(br); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < 2; j++ {
			if ba.At(i, j) != br.At(i, j) {
				t.Fatalf("QᵀB differs at (%d,%d)", i, j)
			}
		}
	}
}

// TestAutoFactorIntoReuses checks the serving path: repeated FactorInto
// with Auto resolves to the same tuple every time (the engine reuse key is
// the resolved tuple, so the arena/DAG/plan are reused) and keeps producing
// the same bits.
func TestAutoFactorIntoReuses(t *testing.T) {
	isolateCalibration(t)
	const m, n = 200, 120
	auto := Options{Algorithm: AlgorithmAuto}
	a := RandomDense(m, n, 3)
	ref, err := Factor(a, auto)
	if err != nil {
		t.Fatal(err)
	}
	refR := ref.R()
	var f Factorization
	for round := 0; round < 3; round++ {
		if err := FactorInto(&f, a, auto); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		r := f.R()
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < r.Cols; j++ {
				if r.At(i, j) != refR.At(i, j) {
					t.Fatalf("round %d: R differs at (%d,%d)", round, i, j)
				}
			}
		}
	}
	// Refactor keeps serving the resolved configuration too.
	if err := f.Refactor(a); err != nil {
		t.Fatal(err)
	}
	if r := f.R(); r.At(0, 0) != refR.At(0, 0) {
		t.Fatal("Refactor after Auto diverged")
	}
}

// TestAutoAllPrecisions exercises Auto through every public entry point;
// the two 64-bit domains must agree on |R| for real-valued data (they may
// legitimately resolve different tuples — R is unique up to row signs).
func TestAutoAllPrecisions(t *testing.T) {
	isolateCalibration(t)
	const m, n = 96, 64
	auto := Options{Algorithm: AlgorithmAuto}
	a := RandomDense(m, n, 5)

	fd, err := Factor(a, auto)
	if err != nil {
		t.Fatal(err)
	}
	za := NewZDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			za.Set(i, j, complex(a.At(i, j), 0))
		}
	}
	fz, err := FactorComplex(za, auto)
	if err != nil {
		t.Fatal(err)
	}
	rd, rz := fd.R(), fz.R()
	for i := 0; i < rd.Rows; i++ {
		for j := 0; j < rd.Cols; j++ {
			if d := math.Abs(math.Abs(rd.At(i, j)) - real(complexAbs(rz.At(i, j)))); d > 1e-8 {
				t.Fatalf("|R| disagrees across domains at (%d,%d): %g", i, j, d)
			}
		}
	}

	s := NewDense32(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s.Set(i, j, float32(a.At(i, j)))
		}
	}
	if _, err := Factor32(s, auto); err != nil {
		t.Fatal(err)
	}
	c := NewCDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.Set(i, j, complex(float32(a.At(i, j)), 0))
		}
	}
	if _, err := CFactor(c, auto); err != nil {
		t.Fatal(err)
	}
}

func complexAbs(z complex128) complex128 {
	return complex(math.Hypot(real(z), imag(z)), 0)
}

// TestAutoStream checks streams pick a tile shape under Auto and still
// reproduce the one-shot R over the same rows.
func TestAutoStream(t *testing.T) {
	isolateCalibration(t)
	const n, rows = 100, 150
	auto := Options{Algorithm: AlgorithmAuto}
	st, err := NewStream(n, auto)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomDense(rows, n, 11)
	// Append in two ragged batches.
	copyRows := func(lo, hi int) *Dense {
		b := NewDense(hi-lo, n)
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				b.Set(i-lo, j, a.At(i, j))
			}
		}
		return b
	}
	if err := st.AppendRows(copyRows(0, 70)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRows(copyRows(70, rows)); err != nil {
		t.Fatal(err)
	}
	f, err := Factor(a, auto)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := st.R()
	if err != nil {
		t.Fatal(err)
	}
	rf := f.R()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if d := math.Abs(math.Abs(rs.At(i, j)) - math.Abs(rf.At(i, j))); d > 1e-10 {
				t.Fatalf("stream R disagrees with one-shot at (%d,%d): %g", i, j, d)
			}
		}
	}
	if _, err := NewCStream(64, auto); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStream32(64, auto); err != nil {
		t.Fatal(err)
	}
	if _, err := NewZStream(64, auto); err != nil {
		t.Fatal(err)
	}
	// Invalid pins error under Auto exactly as they do with explicit
	// options — no silent clamping.
	if _, err := NewStream(64, Options{Algorithm: AlgorithmAuto, TileSize: 16, InnerBlock: 32}); err == nil {
		t.Error("NewStream accepted InnerBlock > pinned TileSize under Auto")
	}
}

// TestAutoAnalysisGuards: the analysis API rejects the Auto placeholder
// with a descriptive error instead of a core-layer failure.
func TestAutoAnalysisGuards(t *testing.T) {
	if _, err := EliminationList(AlgorithmAuto, 4, 2, Options{}); err == nil {
		t.Error("EliminationList accepted AlgorithmAuto")
	}
	if _, err := CriticalPath(AlgorithmAuto, 4, 2, Options{}); err == nil {
		t.Error("CriticalPath accepted AlgorithmAuto")
	}
	if _, err := ZeroTimes(AlgorithmAuto, 4, 2, Options{}); err == nil {
		t.Error("ZeroTimes accepted AlgorithmAuto")
	}
	if _, err := SimulateWorkers(AlgorithmAuto, 4, 2, 2, Options{}); err == nil {
		t.Error("SimulateWorkers accepted AlgorithmAuto")
	}
	if AlgorithmAuto.String() != "Auto" {
		t.Errorf("AlgorithmAuto.String() = %q", AlgorithmAuto.String())
	}
}

// minFactorTime returns the fastest of reps wall-clock factorizations.
func minFactorTime(t *testing.T, a *Dense, opt Options, reps int) float64 {
	t.Helper()
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := Factor(a, opt); err != nil {
			t.Fatal(err)
		}
		if sec := time.Since(start).Seconds(); sec < best {
			best = sec
		}
	}
	return best
}

// TestAutoWithinEnvelope is the measured acceptance criterion: on
// representative shapes, Auto's wall time is never worse than the worst
// fixed algorithm at the same (nb, ib, kernels), and within 15% of the best
// fixed choice on this host. Wall-clock assertions are inherently noisy, so
// the test takes the min of several runs, allows a small measurement slack,
// retries once before failing, and skips under -short and the race
// detector.
func TestAutoWithinEnvelope(t *testing.T) {
	isolateCalibration(t)
	if testing.Short() {
		t.Skip("wall-clock envelope check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock envelope check skipped under the race detector")
	}
	shapes := [][2]int{{256, 128}, {192, 192}}
	for _, s := range shapes {
		m, n := s[0], s[1]
		auto := Options{Algorithm: AlgorithmAuto}
		resolved, err := auto.Resolve(m, n) // also warms calibration before any timing
		if err != nil {
			t.Fatal(err)
		}
		a := RandomDense(m, n, 17)
		check := func() (ok bool, autoT, best, worst float64, bestAlg, worstAlg Algorithm) {
			best, worst = math.Inf(1), 0
			for _, alg := range Algorithms {
				fixed := Options{Algorithm: alg, Kernels: resolved.Kernels,
					TileSize: resolved.TileSize, InnerBlock: resolved.InnerBlock}
				sec := minFactorTime(t, a, fixed, 5)
				if sec < best {
					best, bestAlg = sec, alg
				}
				if sec > worst {
					worst, worstAlg = sec, alg
				}
			}
			autoT = minFactorTime(t, a, auto, 5)
			return autoT <= worst*1.05 && autoT <= best*1.15, autoT, best, worst, bestAlg, worstAlg
		}
		ok, autoT, best, worst, bestAlg, worstAlg := check()
		if !ok { // one retry: absorb a scheduling hiccup, not a real miss
			ok, autoT, best, worst, bestAlg, worstAlg = check()
		}
		t.Logf("%d×%d (nb=%d ib=%d %v): auto %.2fms, best %v %.2fms, worst %v %.2fms",
			m, n, resolved.TileSize, resolved.InnerBlock, resolved.Kernels,
			autoT*1e3, bestAlg, best*1e3, worstAlg, worst*1e3)
		if !ok {
			t.Errorf("%d×%d: auto %.2fms outside envelope [best %v %.2fms ×1.15, worst %v %.2fms]",
				m, n, autoT*1e3, bestAlg, best*1e3, worstAlg, worst*1e3)
		}
	}
}
