package tiledqr

import (
	"context"

	"tiledqr/internal/stream"
	"tiledqr/internal/tile"
)

// CStreamQR is the complex64 instantiation of the streaming TSQR core. See
// StreamQR for the algorithm, option and failure semantics.
type CStreamQR struct {
	c *stream.Core[complex64]
}

// NewCStream creates a complex64 streaming factorization for rows with n
// columns.
func NewCStream(n int, opt Options) (*CStreamQR, error) {
	c, err := newStreamCore[complex64](n, opt)
	if err != nil {
		return nil, err
	}
	return &CStreamQR{c: c}, nil
}

// AppendRows merges a batch of rows (r×n, any r ≥ 1) into the resident
// triangle. The batch is not modified.
func (s *CStreamQR) AppendRows(batch *CDense) error {
	return streamAppend(nil, s.c, (*tile.Dense[complex64])(batch), nil, false)
}

// AppendRowsCtx is AppendRows under a cancellation context (see
// StreamQR.AppendRowsCtx).
func (s *CStreamQR) AppendRowsCtx(ctx context.Context, batch *CDense) error {
	return streamAppend(ctx, s.c, (*tile.Dense[complex64])(batch), nil, false)
}

// AppendRHS merges a batch of rows together with the matching right-hand
// side rows, maintaining the top n rows of Qᴴb for SolveLS.
func (s *CStreamQR) AppendRHS(batch, rhs *CDense) error {
	return streamAppend(nil, s.c, (*tile.Dense[complex64])(batch), (*tile.Dense[complex64])(rhs), true)
}

// AppendRHSCtx is AppendRHS under a cancellation context (see
// StreamQR.AppendRowsCtx).
func (s *CStreamQR) AppendRHSCtx(ctx context.Context, batch, rhs *CDense) error {
	return streamAppend(ctx, s.c, (*tile.Dense[complex64])(batch), (*tile.Dense[complex64])(rhs), true)
}

// Err returns the stream's sticky failure (see StreamQR.Err).
func (s *CStreamQR) Err() error { return s.c.Err() }

// R returns the n×n upper triangular factor of all rows ingested so far.
// After a failed append, R returns the append's original error.
func (s *CStreamQR) R() (*CDense, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	n := s.c.N()
	r := NewCDense(n, n)
	s.c.CopyR(r.Data, r.Stride)
	return r, nil
}

// QTB returns the retained top n rows of Qᴴb (n×nrhs), or nil when the
// stream tracks no right-hand side. After a failed append, QTB returns the
// append's original error.
func (s *CStreamQR) QTB() (*CDense, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	if s.c.NRHS() == 0 {
		return nil, nil
	}
	q := NewCDense(s.c.N(), s.c.NRHS())
	s.c.CopyQTB(q.Data, q.Stride)
	return q, nil
}

// SolveLS returns the n×nrhs least-squares solution over every row
// ingested so far. Requires right-hand-side tracking and at least n
// ingested rows.
func (s *CStreamQR) SolveLS() (*CDense, error) {
	x := NewCDense(s.c.N(), max(s.c.NRHS(), 1))
	if err := s.c.SolveLS(x.Data, x.Stride); err != nil {
		return nil, err
	}
	return x, nil
}

// Rows returns the total number of rows ingested.
func (s *CStreamQR) Rows() int64 { return s.c.Rows() }

// N returns the column count of the streamed system.
func (s *CStreamQR) N() int { return s.c.N() }

// ResidualNorm returns the running least-squares residual ‖b − A·X‖_F over
// all tracked right-hand-side columns (0 when no RHS is tracked). After a
// failed append, ResidualNorm returns the append's original error.
func (s *CStreamQR) ResidualNorm() (float64, error) {
	if err := s.c.Err(); err != nil {
		return 0, err
	}
	return s.c.ResidualNorm(), nil
}

// Footprint returns the number of complex64 values retained across appends.
func (s *CStreamQR) Footprint() int { return s.c.Footprint() }
