package tiledqr

// CStreamQR is the complex64 stream instantiation — an alias of
// Stream[complex64]. See Stream for the algorithm, windowing, option and
// failure semantics.
//
// Deprecated: use Stream[complex64] (or keep using this alias; they are
// the same type). New stream capabilities land on the generic Stream.
type CStreamQR = Stream[complex64]

// NewCStream creates a complex64 streaming factorization for rows with n
// columns.
func NewCStream(n int, opt Options) (*CStreamQR, error) {
	return NewStreamOf[complex64](n, opt)
}
