package tiledqr

import (
	"math"
	"math/cmplx"
	"testing"
)

func checkZFactorization(t *testing.T, m, n int, opt Options) {
	t.Helper()
	a := RandomZDense(m, n, int64(m*1000+n))
	f, err := FactorComplex(a, opt)
	if err != nil {
		t.Fatalf("%v/%v %dx%d: %v", opt.Algorithm, opt.Kernels, m, n, err)
	}
	q := f.Q()
	r := f.R()
	rFull := NewZDense(m, n)
	for i := 0; i < r.Rows; i++ {
		for j := 0; j < n; j++ {
			rFull.Set(i, j, r.At(i, j))
		}
	}
	if res := ZQRResidual(a, q, rFull); res > tol {
		t.Errorf("%v/%v %dx%d: residual %g", opt.Algorithm, opt.Kernels, m, n, res)
	}
	if ortho := ZOrthoResidual(q); ortho > tol {
		t.Errorf("%v/%v %dx%d: orthogonality %g", opt.Algorithm, opt.Kernels, m, n, ortho)
	}
}

func TestFactorComplexAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms {
		for _, kern := range []Kernels{TT, TS} {
			opt := Options{Algorithm: alg, Kernels: kern, TileSize: 8, InnerBlock: 3, Workers: 2}
			checkZFactorization(t, 32, 16, opt)
		}
	}
}

func TestFactorComplexShapes(t *testing.T) {
	for _, s := range [][2]int{{37, 21}, {8, 8}, {5, 5}, {7, 50}, {16, 1}, {1, 1}, {50, 7}} {
		checkZFactorization(t, s[0], s[1], Options{TileSize: 8, InnerBlock: 4, Workers: 3})
	}
}

// TestZRDiagonalReal: LAPACK's complex Householder convention produces an R
// with real diagonal entries.
func TestZRDiagonalReal(t *testing.T) {
	a := RandomZDense(24, 16, 5)
	f, err := FactorComplex(a, Options{TileSize: 8, InnerBlock: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	for i := 0; i < r.Rows; i++ {
		if math.Abs(imag(r.At(i, i))) > tol {
			t.Errorf("R(%d,%d) = %v not real", i, i, r.At(i, i))
		}
	}
}

func TestZApplyQRoundTrip(t *testing.T) {
	a := RandomZDense(32, 16, 7)
	f, err := FactorComplex(a, Options{Algorithm: Fibonacci, TileSize: 8, InnerBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	b0 := RandomZDense(32, 3, 8)
	b := b0.Clone()
	if err := f.ApplyQH(b); err != nil {
		t.Fatal(err)
	}
	if err := f.ApplyQ(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if cmplx.Abs(b.At(i, j)-b0.At(i, j)) > tol {
				t.Fatalf("Q·Qᴴ·b differs from b at (%d,%d)", i, j)
			}
		}
	}
}

func TestZThinQAndSolve(t *testing.T) {
	m, n := 40, 8
	a := RandomZDense(m, n, 9)
	f, err := FactorComplex(a, Options{TileSize: 8, InnerBlock: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	qt := f.ThinQ()
	if o := ZOrthoResidual(qt); o > tol {
		t.Errorf("ThinQ orthogonality %g", o)
	}
	if res := ZQRResidual(a, qt, f.R()); res > tol {
		t.Errorf("thin QR residual %g", res)
	}
	xTrue := RandomZDense(n, 1, 10)
	b := ZMul(a, xTrue)
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if cmplx.Abs(x.At(i, 0)-xTrue.At(i, 0)) > 1e-9 {
			t.Fatalf("x(%d) = %v, want %v", i, x.At(i, 0), xTrue.At(i, 0))
		}
	}
}

func TestZDeterministicAcrossWorkers(t *testing.T) {
	a := RandomZDense(32, 16, 11)
	opt := Options{Algorithm: Greedy, TileSize: 8, InnerBlock: 4, Workers: 1}
	f1, err := FactorComplex(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	f4, err := FactorComplex(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	r1, r4 := f1.R(), f4.R()
	for i := 0; i < r1.Rows; i++ {
		for j := 0; j < r1.Cols; j++ {
			if r1.At(i, j) != r4.At(i, j) {
				t.Fatalf("R(%d,%d) differs between 1 and 4 workers", i, j)
			}
		}
	}
}
