package tiledqr

import (
	"math"
	"math/cmplx"
	"testing"

	"tiledqr/internal/vec"
)

// Cross-backend agreement: the generic Go loops and the SIMD vector backend
// (AVX2/FMA or NEON) are two implementations of the same kernels, differing
// only in floating-point rounding — the vector code fuses multiply-adds and
// accumulates in a different order. These tests factor identical data under
// both backends across every parameter-free algorithm, both TT/TS kernel
// selections and all four precisions, and bound the divergence of R, the
// least-squares solution and the streaming triangle.
//
// Tolerances: each entry of R is an O(m)-term accumulation, so the per-entry
// divergence is bounded by roughly m·ε·‖A‖F. At m ≤ 96 that is ~1e-14·‖A‖F
// in double precision; tolSIMD64 = 1e-11 leaves two orders of headroom
// without masking real defects (a wrong kernel misses by O(‖A‖F), eleven
// orders away). Single precision reuses the suite-wide tol32 (2e-4
// relative), which already dominates any backend-rounding difference.
// Least-squares amplifies by the conditioning; the random normal systems
// here are well-conditioned, so one extra order (tolSIMDLS) is enough.
const (
	tolSIMD64 = 1e-11
	tolSIMDLS = 1e-10
)

// simdAgreeOpts is the algorithm grid of the cross-backend suite. The tile
// size must be large enough that the vector backend actually engages (row
// updates at nc ≥ 16 pass the slice-length dispatch gate); 24 with ib 8
// keeps the grids multi-tile at the test shapes.
func simdAgreeOpts() []Options {
	var opts []Options
	for _, alg := range Algorithms {
		for _, kern := range []Kernels{TT, TS} {
			opts = append(opts, Options{Algorithm: alg, Kernels: kern, TileSize: 24, InnerBlock: 8, Workers: 2})
		}
	}
	return opts
}

// bothFamilies runs f once per vec kernel family and restores the backend
// afterwards. It skips — rather than vacuously passes — when the binary has
// no vector backend (noasm build, unsupported CPU) or the backend was
// disabled at startup (TILEDQR_SIMD=off): those legs have only one family.
func bothFamilies(t *testing.T, f func(t *testing.T, family string)) {
	t.Helper()
	if !vec.SIMDSupported() {
		t.Skip("no SIMD backend in this binary/host; single-family agreement is vacuous")
	}
	if !vec.SIMDEnabled() {
		t.Skip("SIMD backend disabled at startup (TILEDQR_SIMD=off)")
	}
	prev := vec.ActiveFamily()
	t.Cleanup(func() {
		if err := vec.SetFamily(prev); err != nil {
			t.Fatal(err)
		}
	})
	for _, fam := range vec.Families() {
		if err := vec.SetFamily(fam); err != nil {
			t.Fatal(err)
		}
		f(t, fam)
	}
}

// TestSIMDFamilyAgreementFactor factors one matrix per precision under both
// backends and compares R entrywise (up to reflector row signs) across the
// full algorithm × kernel grid.
func TestSIMDFamilyAgreementFactor(t *testing.T) {
	const m, n = 96, 48
	a := RandomDense(m, n, 41)
	za := RandomZDense(m, n, 42)
	a32 := NewDense32(m, n)
	ca := NewCDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a32.Set(i, j, float32(a.At(i, j)))
			v := za.At(i, j)
			ca.Set(i, j, complex(float32(real(v)), float32(imag(v))))
		}
	}
	scale := FrobeniusNorm(a)
	zscale := ZFrobeniusNorm(za)
	for _, opt := range simdAgreeOpts() {
		rs := map[string]*Dense{}
		zrs := map[string]*ZDense{}
		r32s := map[string]*Dense32{}
		crs := map[string]*CDense{}
		bothFamilies(t, func(t *testing.T, fam string) {
			f, err := Factor(a, opt)
			if err != nil {
				t.Fatalf("%v/%v %s: %v", opt.Algorithm, opt.Kernels, fam, err)
			}
			rs[fam] = f.R()
			zf, err := FactorComplex(za, opt)
			if err != nil {
				t.Fatalf("%v/%v %s complex: %v", opt.Algorithm, opt.Kernels, fam, err)
			}
			zrs[fam] = zf.R()
			f32, err := Factor32(a32, opt)
			if err != nil {
				t.Fatalf("%v/%v %s float32: %v", opt.Algorithm, opt.Kernels, fam, err)
			}
			r32s[fam] = f32.R()
			cf, err := CFactor(ca, opt)
			if err != nil {
				t.Fatalf("%v/%v %s complex64: %v", opt.Algorithm, opt.Kernels, fam, err)
			}
			crs[fam] = cf.R()
		})
		if len(rs) < 2 {
			return // skipped: single family
		}
		ref, got := rs[vec.FamilyGeneric], rs[vec.FamilySIMD]
		for i := 0; i < ref.Rows; i++ {
			s := rowSign(ref.At(i, i), got.At(i, i))
			for j := i; j < n; j++ {
				if d := math.Abs(ref.At(i, j) - s*got.At(i, j)); d > tolSIMD64*scale {
					t.Fatalf("%v/%v: R(%d,%d) generic %g vs simd %g (diff %g)",
						opt.Algorithm, opt.Kernels, i, j, ref.At(i, j), s*got.At(i, j), d)
				}
			}
		}
		zref, zgot := zrs[vec.FamilyGeneric], zrs[vec.FamilySIMD]
		for i := 0; i < zref.Rows; i++ {
			s := complex(rowSign(real(zref.At(i, i)), real(zgot.At(i, i))), 0)
			for j := i; j < n; j++ {
				if d := cmplx.Abs(zref.At(i, j) - s*zgot.At(i, j)); d > tolSIMD64*zscale {
					t.Fatalf("%v/%v: complex R(%d,%d) generic %v vs simd %v (diff %g)",
						opt.Algorithm, opt.Kernels, i, j, zref.At(i, j), s*zgot.At(i, j), d)
				}
			}
		}
		ref32, got32 := r32s[vec.FamilyGeneric], r32s[vec.FamilySIMD]
		for i := 0; i < ref32.Rows; i++ {
			s := float32(rowSign(float64(ref32.At(i, i)), float64(got32.At(i, i))))
			for j := i; j < n; j++ {
				if d := math.Abs(float64(ref32.At(i, j) - s*got32.At(i, j))); d > tol32*scale {
					t.Fatalf("%v/%v: float32 R(%d,%d) generic %g vs simd %g (diff %g)",
						opt.Algorithm, opt.Kernels, i, j, ref32.At(i, j), s*got32.At(i, j), d)
				}
			}
		}
		cref, cgot := crs[vec.FamilyGeneric], crs[vec.FamilySIMD]
		for i := 0; i < cref.Rows; i++ {
			s := complex(float32(rowSign(float64(real(cref.At(i, i))), float64(real(cgot.At(i, i))))), 0)
			for j := i; j < n; j++ {
				d := cref.At(i, j) - s*cgot.At(i, j)
				if cmplx.Abs(complex(float64(real(d)), float64(imag(d)))) > tol32*zscale {
					t.Fatalf("%v/%v: complex64 R(%d,%d) generic %v vs simd %v",
						opt.Algorithm, opt.Kernels, i, j, cref.At(i, j), cgot.At(i, j))
				}
			}
		}
	}
}

// TestSIMDFamilyAgreementSolveLS solves the same least-squares system under
// both backends in every precision; row signs cancel in x, so the solutions
// compare directly.
func TestSIMDFamilyAgreementSolveLS(t *testing.T) {
	const m, n, nrhs = 96, 24, 2
	opt := Options{Algorithm: Greedy, TileSize: 24, InnerBlock: 8, Workers: 2}
	a := RandomDense(m, n, 43)
	b := RandomDense(m, nrhs, 44)
	za := RandomZDense(m, n, 45)
	zb := RandomZDense(m, nrhs, 46)
	a32, b32 := NewDense32(m, n), NewDense32(m, nrhs)
	ca, cb := NewCDense(m, n), NewCDense(m, nrhs)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a32.Set(i, j, float32(a.At(i, j)))
			v := za.At(i, j)
			ca.Set(i, j, complex(float32(real(v)), float32(imag(v))))
		}
		for j := 0; j < nrhs; j++ {
			b32.Set(i, j, float32(b.At(i, j)))
			v := zb.At(i, j)
			cb.Set(i, j, complex(float32(real(v)), float32(imag(v))))
		}
	}
	xs := map[string]*Dense{}
	zxs := map[string]*ZDense{}
	x32s := map[string]*Dense32{}
	cxs := map[string]*CDense{}
	bothFamilies(t, func(t *testing.T, fam string) {
		f, err := Factor(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		if xs[fam], err = f.SolveLS(b); err != nil {
			t.Fatal(err)
		}
		zf, err := FactorComplex(za, opt)
		if err != nil {
			t.Fatal(err)
		}
		if zxs[fam], err = zf.SolveLS(zb); err != nil {
			t.Fatal(err)
		}
		f32, err := Factor32(a32, opt)
		if err != nil {
			t.Fatal(err)
		}
		if x32s[fam], err = f32.SolveLS(b32); err != nil {
			t.Fatal(err)
		}
		cf, err := CFactor(ca, opt)
		if err != nil {
			t.Fatal(err)
		}
		if cxs[fam], err = cf.SolveLS(cb); err != nil {
			t.Fatal(err)
		}
	})
	if len(xs) < 2 {
		return // skipped: single family
	}
	for i := 0; i < n; i++ {
		for j := 0; j < nrhs; j++ {
			if d := math.Abs(xs[vec.FamilyGeneric].At(i, j) - xs[vec.FamilySIMD].At(i, j)); d > tolSIMDLS {
				t.Fatalf("x(%d,%d): generic %g vs simd %g", i, j,
					xs[vec.FamilyGeneric].At(i, j), xs[vec.FamilySIMD].At(i, j))
			}
			if d := cmplx.Abs(zxs[vec.FamilyGeneric].At(i, j) - zxs[vec.FamilySIMD].At(i, j)); d > tolSIMDLS {
				t.Fatalf("complex x(%d,%d): generic %v vs simd %v", i, j,
					zxs[vec.FamilyGeneric].At(i, j), zxs[vec.FamilySIMD].At(i, j))
			}
			if d := math.Abs(float64(x32s[vec.FamilyGeneric].At(i, j) - x32s[vec.FamilySIMD].At(i, j))); d > 1e-3 {
				t.Fatalf("float32 x(%d,%d): generic %g vs simd %g", i, j,
					x32s[vec.FamilyGeneric].At(i, j), x32s[vec.FamilySIMD].At(i, j))
			}
			cd := cxs[vec.FamilyGeneric].At(i, j) - cxs[vec.FamilySIMD].At(i, j)
			if cmplx.Abs(complex(float64(real(cd)), float64(imag(cd)))) > 1e-3 {
				t.Fatalf("complex64 x(%d,%d): generic %v vs simd %v", i, j,
					cxs[vec.FamilyGeneric].At(i, j), cxs[vec.FamilySIMD].At(i, j))
			}
		}
	}
}

// TestSIMDFamilyAgreementStream ingests identical row batches into a
// streaming TSQR under both backends in every precision and compares the
// resident triangles (up to row signs).
func TestSIMDFamilyAgreementStream(t *testing.T) {
	const n, rows, batch = 32, 96, 24
	opt := Options{TileSize: 16, InnerBlock: 8}
	a := RandomDense(rows, n, 47)
	za := RandomZDense(rows, n, 48)
	a32 := NewDense32(rows, n)
	ca := NewCDense(rows, n)
	for i := 0; i < rows; i++ {
		for j := 0; j < n; j++ {
			a32.Set(i, j, float32(a.At(i, j)))
			v := za.At(i, j)
			ca.Set(i, j, complex(float32(real(v)), float32(imag(v))))
		}
	}
	scale := FrobeniusNorm(a)
	zscale := ZFrobeniusNorm(za)
	rs := map[string]*Dense{}
	zrs := map[string]*ZDense{}
	r32s := map[string]*Dense32{}
	crs := map[string]*CDense{}
	bothFamilies(t, func(t *testing.T, fam string) {
		s, err := NewStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		zs, err := NewZStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		s32, err := NewStream32(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := NewCStream(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		for r0 := 0; r0 < rows; r0 += batch {
			view := NewDense(batch, n)
			zview := NewZDense(batch, n)
			view32 := NewDense32(batch, n)
			cview := NewCDense(batch, n)
			for i := 0; i < batch; i++ {
				for j := 0; j < n; j++ {
					view.Set(i, j, a.At(r0+i, j))
					zview.Set(i, j, za.At(r0+i, j))
					view32.Set(i, j, a32.At(r0+i, j))
					cview.Set(i, j, ca.At(r0+i, j))
				}
			}
			if err := s.AppendRows(view); err != nil {
				t.Fatal(err)
			}
			if err := zs.AppendRows(zview); err != nil {
				t.Fatal(err)
			}
			if err := s32.AppendRows(view32); err != nil {
				t.Fatal(err)
			}
			if err := cs.AppendRows(cview); err != nil {
				t.Fatal(err)
			}
		}
		if rs[fam], err = s.R(); err != nil {
			t.Fatal(err)
		}
		if zrs[fam], err = zs.R(); err != nil {
			t.Fatal(err)
		}
		if r32s[fam], err = s32.R(); err != nil {
			t.Fatal(err)
		}
		if crs[fam], err = cs.R(); err != nil {
			t.Fatal(err)
		}
	})
	if len(rs) < 2 {
		return // skipped: single family
	}
	ref, got := rs[vec.FamilyGeneric], rs[vec.FamilySIMD]
	zref, zgot := zrs[vec.FamilyGeneric], zrs[vec.FamilySIMD]
	ref32, got32 := r32s[vec.FamilyGeneric], r32s[vec.FamilySIMD]
	cref, cgot := crs[vec.FamilyGeneric], crs[vec.FamilySIMD]
	for i := 0; i < n; i++ {
		s := rowSign(ref.At(i, i), got.At(i, i))
		zsgn := complex(rowSign(real(zref.At(i, i)), real(zgot.At(i, i))), 0)
		s32 := float32(rowSign(float64(ref32.At(i, i)), float64(got32.At(i, i))))
		csgn := complex(float32(rowSign(float64(real(cref.At(i, i))), float64(real(cgot.At(i, i))))), 0)
		for j := i; j < n; j++ {
			if d := math.Abs(ref.At(i, j) - s*got.At(i, j)); d > tolSIMD64*scale {
				t.Fatalf("stream R(%d,%d): generic %g vs simd %g (diff %g)", i, j, ref.At(i, j), s*got.At(i, j), d)
			}
			if d := cmplx.Abs(zref.At(i, j) - zsgn*zgot.At(i, j)); d > tolSIMD64*zscale {
				t.Fatalf("complex stream R(%d,%d): generic %v vs simd %v (diff %g)", i, j, zref.At(i, j), zsgn*zgot.At(i, j), d)
			}
			if d := math.Abs(float64(ref32.At(i, j) - s32*got32.At(i, j))); d > tol32*scale {
				t.Fatalf("float32 stream R(%d,%d): generic %g vs simd %g", i, j, ref32.At(i, j), s32*got32.At(i, j))
			}
			cd := cref.At(i, j) - csgn*cgot.At(i, j)
			if cmplx.Abs(complex(float64(real(cd)), float64(imag(cd)))) > tol32*zscale {
				t.Fatalf("complex64 stream R(%d,%d): generic %v vs simd %v", i, j, cref.At(i, j), cgot.At(i, j))
			}
		}
	}
}
