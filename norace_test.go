//go:build !race

package tiledqr

// raceEnabled reports whether the race detector instruments this build;
// wall-clock performance assertions skip themselves under it.
const raceEnabled = false
