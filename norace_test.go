//go:build !race

package tiledqr

// raceEnabled reports whether the race detector instruments this build;
// wall-clock performance assertions skip themselves under it.
const raceEnabled = false

// raceFactor scales timing budgets in latency assertions (instrumented
// kernels run several times slower under the race detector).
const raceFactor = 1
