package tiledqr

import (
	"context"
	"sync"

	"tiledqr/internal/sched"
)

// Runtime is a persistent pool of worker goroutines that executes the task
// DAGs of any number of concurrent factorizations — the role PLASMA's
// resident dynamic scheduler plays in the paper's experiments. One runtime
// serves Factor/Factor32/CFactor/FactorComplex and every stream across all
// four precisions: submit from as many goroutines as you like, and the
// pool multiplexes the work with critical-path priorities inside each
// factorization and weighted-fair admission across them, so one huge
// factorization cannot starve a fleet of small ones.
//
// Most programs never construct one: with Options.Runtime nil and
// Options.Workers zero, calls share the process-wide DefaultRuntime.
// Construct a dedicated Runtime to bound a subsystem's parallelism or to
// isolate latency-sensitive work, and Close it when done. Setting
// Options.Workers > 1 instead opts out of sharing entirely: a private pool
// is built and torn down around that one call (the pre-runtime behavior,
// kept as the benchmark baseline).
type Runtime struct {
	s *sched.Runtime
}

// NewRuntime starts a runtime with the given number of resident workers.
// workers ≤ 0 means the default sizing: the TILEDQR_WORKERS environment
// variable when it parses as a positive integer, else GOMAXPROCS — so
// container deployments can cap the library's parallelism without a code
// change. The workers park when idle; call Close to stop them.
func NewRuntime(workers int) *Runtime {
	return &Runtime{s: sched.NewRuntime(workers)}
}

var (
	defaultRuntimeOnce sync.Once
	defaultRuntime     *Runtime
)

// DefaultRuntime returns the process-wide shared runtime, started on first
// use with the default sizing (TILEDQR_WORKERS if set to a positive
// integer, else GOMAXPROCS). Factorizations with neither Options.Runtime
// nor Options.Workers set execute here. Closing it is a no-op: it lives for
// the process.
func DefaultRuntime() *Runtime {
	defaultRuntimeOnce.Do(func() {
		defaultRuntime = &Runtime{s: sched.Default()}
	})
	return defaultRuntime
}

// Workers returns the size of the worker pool.
func (rt *Runtime) Workers() int { return rt.s.Workers() }

// RuntimeStats is a point-in-time snapshot of a Runtime's load, as reported
// by Runtime.Stats — the feed for a serving front end's health and stats
// endpoints.
type RuntimeStats struct {
	// Workers is the size of the worker pool.
	Workers int
	// QueuedTasks counts ready kernel tasks waiting in the worker deques
	// across every in-flight factorization — the instantaneous backlog the
	// pool has yet to execute. Tasks whose dependencies are unmet are not
	// counted until they become ready.
	QueuedTasks int
	// InFlightJobs counts factorization/merge DAGs submitted and not yet
	// completed (each Factor, FactorInto, stream append or solve that runs
	// on the pool is one job).
	InFlightJobs int
	// Draining and Closed report lifecycle state: a draining or closed
	// runtime rejects new submissions.
	Draining bool
	Closed   bool
}

// Stats snapshots the runtime's current load. It is safe to call from any
// goroutine and cheap enough for per-request admission checks; the counts
// are a consistent-enough point-in-time view, not a serialized snapshot.
func (rt *Runtime) Stats() RuntimeStats {
	s := rt.s.Stats()
	return RuntimeStats{
		Workers:      s.Workers,
		QueuedTasks:  s.QueuedTasks,
		InFlightJobs: s.InFlight,
		Draining:     s.Draining,
		Closed:       s.Closed,
	}
}

// Close waits for in-flight factorizations to complete, then stops the
// workers and waits for them to exit; afterwards submitting to the runtime
// fails with ErrRuntimeClosed (it never hangs). Close is idempotent:
// calling it twice is safe. Closing the DefaultRuntime is a no-op.
func (rt *Runtime) Close() { rt.s.Close() }

// Drain gracefully quiesces the runtime: new submissions are rejected with
// ErrRuntimeDraining and Drain waits — bounded by ctx — for every in-flight
// factorization to complete. It returns nil once the runtime is idle, or
// ctx.Err() if the deadline expires first (in-flight work keeps running; a
// later Drain or Close can wait for it again). Draining the DefaultRuntime
// waits for idleness but never rejects submissions — it lives for the
// process. A nil ctx waits without bound.
func (rt *Runtime) Drain(ctx context.Context) error { return rt.s.Drain(ctx) }

// ErrRuntimeClosed and ErrRuntimeDraining report submissions to a Runtime
// that is no longer accepting work; match them with errors.Is.
var (
	ErrRuntimeClosed   = sched.ErrClosed
	ErrRuntimeDraining = sched.ErrDraining
)
