package tiledqr

import (
	"math"
	"testing"
)

func TestCriticalPathPublic(t *testing.T) {
	// Spot values from Table 5 of the paper.
	cases := []struct {
		alg  Algorithm
		p, q int
		want int
	}{
		{Greedy, 40, 1, 16},
		{Greedy, 40, 6, 148},
		{Greedy, 40, 40, 826},
		{Fibonacci, 40, 6, 160},
		{FlatTree, 40, 6, 6*40 + 16*6 - 22},
	}
	for _, c := range cases {
		cp, err := CriticalPath(c.alg, c.p, c.q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cp != c.want {
			t.Errorf("CriticalPath(%v, %d, %d) = %d, want %d", c.alg, c.p, c.q, cp, c.want)
		}
	}
	if _, err := CriticalPath(PlasmaTree, 10, 5, Options{}); err == nil {
		t.Error("PlasmaTree without BS accepted")
	}
	if cp, err := CriticalPath(PlasmaTree, 40, 6, Options{BS: 10}); err != nil || cp != 198 {
		t.Errorf("PlasmaTree BS=10: cp=%d err=%v, want 198", cp, err)
	}
}

func TestBestPlasmaBSPublic(t *testing.T) {
	bs, cp := BestPlasmaBS(40, 6, TT)
	if cp != 198 {
		t.Errorf("BestPlasmaBS(40,6) cp = %d, want 198 (Table 5)", cp)
	}
	if got, _ := CriticalPath(PlasmaTree, 40, 6, Options{BS: bs}); got != cp {
		t.Errorf("reported BS=%d does not achieve cp %d", bs, cp)
	}
}

func TestBestGrasapK(t *testing.T) {
	// 15×3: Grasap(1) = 62 beats both Greedy (64) and Asap (86).
	k, cp := BestGrasapK(15, 3)
	if k != 1 || cp != 62 {
		t.Errorf("BestGrasapK(15,3) = (%d, %d), want (1, 62)", k, cp)
	}
	// The sweep can never be worse than Greedy (k=0 is in the sweep).
	for _, s := range [][2]int{{15, 2}, {20, 5}, {12, 12}} {
		_, best := BestGrasapK(s[0], s[1])
		greedy, _ := CriticalPath(Greedy, s[0], s[1], Options{})
		if best > greedy {
			t.Errorf("BestGrasapK(%d,%d) = %d worse than Greedy %d", s[0], s[1], best, greedy)
		}
	}
}

func TestEliminationListPublic(t *testing.T) {
	elims, err := EliminationList(Greedy, 6, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for k := 1; k <= 3; k++ {
		want += 6 - k
	}
	if len(elims) != want {
		t.Errorf("got %d eliminations, want %d", len(elims), want)
	}
	seen := map[[2]int]bool{}
	for _, e := range elims {
		if e.I <= e.K || e.Piv < e.K || e.Piv >= e.I {
			t.Errorf("malformed elimination %+v", e)
		}
		seen[[2]int{e.I, e.K}] = true
	}
	if len(seen) != want {
		t.Error("duplicate eliminations")
	}
}

func TestZeroTimesPublic(t *testing.T) {
	// Table 3 spot checks (Greedy 15×6).
	zero, err := ZeroTimes(Greedy, 15, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if zero[1][0] != 12 { // tile (2,1)
		t.Errorf("tile (2,1) zeroed at %d, want 12", zero[1][0])
	}
	if zero[14][5] != 98 { // tile (15,6)
		t.Errorf("tile (15,6) zeroed at %d, want 98", zero[14][5])
	}
}

func TestSimulateWorkersPublic(t *testing.T) {
	seq, err := SimulateWorkers(Greedy, 15, 6, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One worker = total weight = 6pq²−2q³.
	if want := float64(6*15*36 - 2*216); seq != want {
		t.Errorf("sequential makespan %.0f, want %.0f", seq, want)
	}
	inf, err := SimulateWorkers(Greedy, 15, 6, 1<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := CriticalPath(Greedy, 15, 6, Options{})
	if inf != float64(cp) {
		t.Errorf("unbounded makespan %.0f, want critical path %d", inf, cp)
	}
}

func TestPredictPublic(t *testing.T) {
	// One worker: prediction equals γseq.
	g, err := Predict(Greedy, 15, 6, 1, 3.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g != 3.5 {
		t.Errorf("P=1 prediction %g, want 3.5", g)
	}
	// More workers never predict slower.
	prev := 0.0
	for _, p := range []int{1, 2, 8, 48} {
		g, _ := Predict(Greedy, 15, 6, p, 1.0, Options{})
		if g < prev {
			t.Errorf("prediction decreased at P=%d", p)
		}
		prev = g
	}
}

func TestKernelWeightPublic(t *testing.T) {
	for name, w := range map[string]int{
		"GEQRT": 4, "UNMQR": 6, "TSQRT": 6, "TSMQR": 12, "TTQRT": 2, "TTMQR": 6,
	} {
		got, err := KernelWeight(name)
		if err != nil || got != w {
			t.Errorf("KernelWeight(%s) = %d,%v want %d", name, got, err, w)
		}
	}
	if _, err := KernelWeight("NOPE"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestTotalFlopsPublic(t *testing.T) {
	want := 2*100*100*100 - 2.0/3.0*100*100*100
	if got := TotalFlops(100, 100); math.Abs(got-want) > 1e-6*want {
		t.Errorf("TotalFlops(100,100) = %g, want %g", got, want)
	}
	if TotalFlopsComplex(64, 32) != 4*TotalFlops(64, 32) {
		t.Error("complex flops must be 4× real")
	}
}

func TestGanttChartPublic(t *testing.T) {
	a := RandomDense(32, 16, 1)
	f, err := Factor(a, Options{TileSize: 8, Workers: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	g := f.GanttChart(60)
	if len(g) < 60 {
		t.Errorf("suspiciously short Gantt: %q", g)
	}
	u := f.Utilization()
	if len(u.PerWorker) != 2 {
		t.Errorf("utilization for %d workers, want 2", len(u.PerWorker))
	}
	// Untraced factorization degrades gracefully.
	f2, err := Factor(a, Options{TileSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g := f2.GanttChart(60); g != "(run with Options.Trace to record a Gantt chart)\n" {
		t.Errorf("untraced GanttChart = %q", g)
	}
}
