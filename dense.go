package tiledqr

import (
	"tiledqr/internal/tile"
)

// Scalar is the set of element types the package factors: the four
// precision domains of the paper's kernel family. Generic entry points
// (Mat, Stream, NewStreamOf) are parameterized over it; the per-precision
// named types below are aliases of their generic instantiations.
type Scalar interface {
	float32 | float64 | complex64 | complex128
}

// Mat is a row-major dense matrix over any supported scalar domain:
// element (i, j) lives at Data[i*Stride+j]. The named types Dense
// (float64), ZDense (complex128), Dense32 (float32) and CDense (complex64)
// are aliases of its four instantiations, so the historical per-precision
// API and the generic one are interchangeable.
type Mat[T Scalar] tile.Dense[T]

// NewMat allocates a zero r×c matrix in the scalar domain T.
func NewMat[T Scalar](r, c int) *Mat[T] { return (*Mat[T])(tile.NewDense[T](r, c)) }

// RandomMat returns an r×c matrix with standard normal entries (normal
// real and imaginary parts in the complex domains) from a deterministic
// generator.
func RandomMat[T Scalar](r, c int, seed int64) *Mat[T] {
	return (*Mat[T])(tile.RandDense[T](r, c, seed))
}

// At returns element (i, j).
func (a *Mat[T]) At(i, j int) T { return (*tile.Dense[T])(a).At(i, j) }

// Set assigns element (i, j).
func (a *Mat[T]) Set(i, j int, v T) { (*tile.Dense[T])(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *Mat[T]) Clone() *Mat[T] { return (*Mat[T])((*tile.Dense[T])(a).Clone()) }

// Dense is a row-major dense float64 matrix — an alias of Mat[float64].
type Dense = Mat[float64]

// NewDense allocates a zero r×c matrix.
func NewDense(r, c int) *Dense { return NewMat[float64](r, c) }

// RandomDense returns an r×c matrix with standard normal entries from a
// deterministic generator (useful for examples and benchmarks).
func RandomDense(r, c int, seed int64) *Dense { return RandomMat[float64](r, c, seed) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense { return (*Dense)(tile.Identity[float64](n)) }

// Mul returns the product a·b.
func Mul(a, b *Dense) *Dense {
	return (*Dense)(tile.Mul((*tile.Dense[float64])(a), (*tile.Dense[float64])(b)))
}

// Transpose returns aᵀ.
func Transpose(a *Dense) *Dense { return (*Dense)(tile.Transpose((*tile.Dense[float64])(a))) }

// FrobeniusNorm returns ‖a‖_F.
func FrobeniusNorm(a *Dense) float64 { return tile.FrobNorm((*tile.Dense[float64])(a)) }

// QRResidual returns ‖A − Q·R‖_F / ‖A‖_F, the scaled backward error of a
// factorization (Q must be m×k and R k×n).
func QRResidual(a, q, r *Dense) float64 {
	return tile.ResidualQR((*tile.Dense[float64])(a), (*tile.Dense[float64])(q), (*tile.Dense[float64])(r))
}

// OrthoResidual returns ‖QᵀQ − I‖_F, the loss of orthogonality of Q's
// columns.
func OrthoResidual(q *Dense) float64 { return tile.OrthoResidual((*tile.Dense[float64])(q)) }

// ZDense is a row-major dense complex128 matrix — an alias of
// Mat[complex128].
type ZDense = Mat[complex128]

// NewZDense allocates a zero r×c complex matrix.
func NewZDense(r, c int) *ZDense { return NewMat[complex128](r, c) }

// RandomZDense returns an r×c complex matrix with standard normal real and
// imaginary parts.
func RandomZDense(r, c int, seed int64) *ZDense { return RandomMat[complex128](r, c, seed) }

// ZIdentity returns the n×n complex identity.
func ZIdentity(n int) *ZDense { return (*ZDense)(tile.Identity[complex128](n)) }

// ZMul returns the product a·b.
func ZMul(a, b *ZDense) *ZDense {
	return (*ZDense)(tile.Mul((*tile.Dense[complex128])(a), (*tile.Dense[complex128])(b)))
}

// ZFrobeniusNorm returns ‖a‖_F.
func ZFrobeniusNorm(a *ZDense) float64 { return tile.FrobNorm((*tile.Dense[complex128])(a)) }

// ZQRResidual returns ‖A − Q·R‖_F / ‖A‖_F.
func ZQRResidual(a, q, r *ZDense) float64 {
	return tile.ResidualQR((*tile.Dense[complex128])(a), (*tile.Dense[complex128])(q), (*tile.Dense[complex128])(r))
}

// ZOrthoResidual returns ‖QᴴQ − I‖_F.
func ZOrthoResidual(q *ZDense) float64 { return tile.OrthoResidual((*tile.Dense[complex128])(q)) }

// Dense32 is a row-major dense float32 matrix — an alias of Mat[float32],
// factored by Factor32.
type Dense32 = Mat[float32]

// NewDense32 allocates a zero r×c float32 matrix.
func NewDense32(r, c int) *Dense32 { return NewMat[float32](r, c) }

// RandomDense32 returns an r×c float32 matrix with standard normal entries
// from a deterministic generator.
func RandomDense32(r, c int, seed int64) *Dense32 { return RandomMat[float32](r, c, seed) }

// Identity32 returns the n×n float32 identity.
func Identity32(n int) *Dense32 { return (*Dense32)(tile.Identity[float32](n)) }

// Mul32 returns the product a·b.
func Mul32(a, b *Dense32) *Dense32 {
	return (*Dense32)(tile.Mul((*tile.Dense[float32])(a), (*tile.Dense[float32])(b)))
}

// FrobeniusNorm32 returns ‖a‖_F.
func FrobeniusNorm32(a *Dense32) float64 { return tile.FrobNorm((*tile.Dense[float32])(a)) }

// QRResidual32 returns ‖A − Q·R‖_F / ‖A‖_F.
func QRResidual32(a, q, r *Dense32) float64 {
	return tile.ResidualQR((*tile.Dense[float32])(a), (*tile.Dense[float32])(q), (*tile.Dense[float32])(r))
}

// OrthoResidual32 returns ‖QᵀQ − I‖_F.
func OrthoResidual32(q *Dense32) float64 { return tile.OrthoResidual((*tile.Dense[float32])(q)) }

// CDense is a row-major dense complex64 matrix — an alias of
// Mat[complex64], factored by CFactor.
type CDense = Mat[complex64]

// NewCDense allocates a zero r×c complex64 matrix.
func NewCDense(r, c int) *CDense { return NewMat[complex64](r, c) }

// RandomCDense returns an r×c complex64 matrix with standard normal real
// and imaginary parts.
func RandomCDense(r, c int, seed int64) *CDense { return RandomMat[complex64](r, c, seed) }

// CIdentity returns the n×n complex64 identity.
func CIdentity(n int) *CDense { return (*CDense)(tile.Identity[complex64](n)) }

// CMul returns the product a·b.
func CMul(a, b *CDense) *CDense {
	return (*CDense)(tile.Mul((*tile.Dense[complex64])(a), (*tile.Dense[complex64])(b)))
}

// CFrobeniusNorm returns ‖a‖_F.
func CFrobeniusNorm(a *CDense) float64 { return tile.FrobNorm((*tile.Dense[complex64])(a)) }

// CQRResidual returns ‖A − Q·R‖_F / ‖A‖_F.
func CQRResidual(a, q, r *CDense) float64 {
	return tile.ResidualQR((*tile.Dense[complex64])(a), (*tile.Dense[complex64])(q), (*tile.Dense[complex64])(r))
}

// COrthoResidual returns ‖QᴴQ − I‖_F.
func COrthoResidual(q *CDense) float64 { return tile.OrthoResidual((*tile.Dense[complex64])(q)) }
