package tiledqr

import (
	"tiledqr/internal/tile"
)

// Dense is a row-major dense real matrix: element (i, j) lives at
// Data[i*Stride+j].
type Dense tile.Dense

// NewDense allocates a zero r×c matrix.
func NewDense(r, c int) *Dense { return (*Dense)(tile.NewDense(r, c)) }

// RandomDense returns an r×c matrix with standard normal entries from a
// deterministic generator (useful for examples and benchmarks).
func RandomDense(r, c int, seed int64) *Dense { return (*Dense)(tile.RandDense(r, c, seed)) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense { return (*Dense)(tile.Identity(n)) }

// At returns element (i, j).
func (a *Dense) At(i, j int) float64 { return (*tile.Dense)(a).At(i, j) }

// Set assigns element (i, j).
func (a *Dense) Set(i, j int, v float64) { (*tile.Dense)(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *Dense) Clone() *Dense { return (*Dense)((*tile.Dense)(a).Clone()) }

// Mul returns the product a·b.
func Mul(a, b *Dense) *Dense {
	return (*Dense)(tile.Mul((*tile.Dense)(a), (*tile.Dense)(b)))
}

// Transpose returns aᵀ.
func Transpose(a *Dense) *Dense { return (*Dense)(tile.Transpose((*tile.Dense)(a))) }

// FrobeniusNorm returns ‖a‖_F.
func FrobeniusNorm(a *Dense) float64 { return tile.FrobNorm((*tile.Dense)(a)) }

// QRResidual returns ‖A − Q·R‖_F / ‖A‖_F, the scaled backward error of a
// factorization (Q must be m×k and R k×n).
func QRResidual(a, q, r *Dense) float64 {
	return tile.ResidualQR((*tile.Dense)(a), (*tile.Dense)(q), (*tile.Dense)(r))
}

// OrthoResidual returns ‖QᵀQ − I‖_F, the loss of orthogonality of Q's
// columns.
func OrthoResidual(q *Dense) float64 { return tile.OrthoResidual((*tile.Dense)(q)) }

// ZDense is a row-major dense complex matrix.
type ZDense tile.ZDense

// NewZDense allocates a zero r×c complex matrix.
func NewZDense(r, c int) *ZDense { return (*ZDense)(tile.NewZDense(r, c)) }

// RandomZDense returns an r×c complex matrix with standard normal real and
// imaginary parts.
func RandomZDense(r, c int, seed int64) *ZDense { return (*ZDense)(tile.RandZDense(r, c, seed)) }

// ZIdentity returns the n×n complex identity.
func ZIdentity(n int) *ZDense { return (*ZDense)(tile.ZIdentity(n)) }

// At returns element (i, j).
func (a *ZDense) At(i, j int) complex128 { return (*tile.ZDense)(a).At(i, j) }

// Set assigns element (i, j).
func (a *ZDense) Set(i, j int, v complex128) { (*tile.ZDense)(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *ZDense) Clone() *ZDense { return (*ZDense)((*tile.ZDense)(a).Clone()) }

// ZMul returns the product a·b.
func ZMul(a, b *ZDense) *ZDense {
	return (*ZDense)(tile.ZMul((*tile.ZDense)(a), (*tile.ZDense)(b)))
}

// ZQRResidual returns ‖A − Q·R‖_F / ‖A‖_F.
func ZQRResidual(a, q, r *ZDense) float64 {
	return tile.ZResidualQR((*tile.ZDense)(a), (*tile.ZDense)(q), (*tile.ZDense)(r))
}

// ZOrthoResidual returns ‖QᴴQ − I‖_F.
func ZOrthoResidual(q *ZDense) float64 { return tile.ZOrthoResidual((*tile.ZDense)(q)) }
