package tiledqr

import (
	"tiledqr/internal/tile"
)

// Dense is a row-major dense float64 matrix: element (i, j) lives at
// Data[i*Stride+j]. Its three precision siblings — ZDense (complex128),
// Dense32 (float32) and CDense (complex64) — share one generic
// implementation below the public API.
type Dense tile.Dense[float64]

// NewDense allocates a zero r×c matrix.
func NewDense(r, c int) *Dense { return (*Dense)(tile.NewDense[float64](r, c)) }

// RandomDense returns an r×c matrix with standard normal entries from a
// deterministic generator (useful for examples and benchmarks).
func RandomDense(r, c int, seed int64) *Dense { return (*Dense)(tile.RandDense[float64](r, c, seed)) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense { return (*Dense)(tile.Identity[float64](n)) }

// At returns element (i, j).
func (a *Dense) At(i, j int) float64 { return (*tile.Dense[float64])(a).At(i, j) }

// Set assigns element (i, j).
func (a *Dense) Set(i, j int, v float64) { (*tile.Dense[float64])(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *Dense) Clone() *Dense { return (*Dense)((*tile.Dense[float64])(a).Clone()) }

// Mul returns the product a·b.
func Mul(a, b *Dense) *Dense {
	return (*Dense)(tile.Mul((*tile.Dense[float64])(a), (*tile.Dense[float64])(b)))
}

// Transpose returns aᵀ.
func Transpose(a *Dense) *Dense { return (*Dense)(tile.Transpose((*tile.Dense[float64])(a))) }

// FrobeniusNorm returns ‖a‖_F.
func FrobeniusNorm(a *Dense) float64 { return tile.FrobNorm((*tile.Dense[float64])(a)) }

// QRResidual returns ‖A − Q·R‖_F / ‖A‖_F, the scaled backward error of a
// factorization (Q must be m×k and R k×n).
func QRResidual(a, q, r *Dense) float64 {
	return tile.ResidualQR((*tile.Dense[float64])(a), (*tile.Dense[float64])(q), (*tile.Dense[float64])(r))
}

// OrthoResidual returns ‖QᵀQ − I‖_F, the loss of orthogonality of Q's
// columns.
func OrthoResidual(q *Dense) float64 { return tile.OrthoResidual((*tile.Dense[float64])(q)) }

// ZDense is a row-major dense complex128 matrix.
type ZDense tile.Dense[complex128]

// NewZDense allocates a zero r×c complex matrix.
func NewZDense(r, c int) *ZDense { return (*ZDense)(tile.NewDense[complex128](r, c)) }

// RandomZDense returns an r×c complex matrix with standard normal real and
// imaginary parts.
func RandomZDense(r, c int, seed int64) *ZDense {
	return (*ZDense)(tile.RandDense[complex128](r, c, seed))
}

// ZIdentity returns the n×n complex identity.
func ZIdentity(n int) *ZDense { return (*ZDense)(tile.Identity[complex128](n)) }

// At returns element (i, j).
func (a *ZDense) At(i, j int) complex128 { return (*tile.Dense[complex128])(a).At(i, j) }

// Set assigns element (i, j).
func (a *ZDense) Set(i, j int, v complex128) { (*tile.Dense[complex128])(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *ZDense) Clone() *ZDense { return (*ZDense)((*tile.Dense[complex128])(a).Clone()) }

// ZMul returns the product a·b.
func ZMul(a, b *ZDense) *ZDense {
	return (*ZDense)(tile.Mul((*tile.Dense[complex128])(a), (*tile.Dense[complex128])(b)))
}

// ZFrobeniusNorm returns ‖a‖_F.
func ZFrobeniusNorm(a *ZDense) float64 { return tile.FrobNorm((*tile.Dense[complex128])(a)) }

// ZQRResidual returns ‖A − Q·R‖_F / ‖A‖_F.
func ZQRResidual(a, q, r *ZDense) float64 {
	return tile.ResidualQR((*tile.Dense[complex128])(a), (*tile.Dense[complex128])(q), (*tile.Dense[complex128])(r))
}

// ZOrthoResidual returns ‖QᴴQ − I‖_F.
func ZOrthoResidual(q *ZDense) float64 { return tile.OrthoResidual((*tile.Dense[complex128])(q)) }

// Dense32 is a row-major dense float32 matrix — the single-precision
// sibling of Dense, factored by Factor32.
type Dense32 tile.Dense[float32]

// NewDense32 allocates a zero r×c float32 matrix.
func NewDense32(r, c int) *Dense32 { return (*Dense32)(tile.NewDense[float32](r, c)) }

// RandomDense32 returns an r×c float32 matrix with standard normal entries
// from a deterministic generator.
func RandomDense32(r, c int, seed int64) *Dense32 {
	return (*Dense32)(tile.RandDense[float32](r, c, seed))
}

// Identity32 returns the n×n float32 identity.
func Identity32(n int) *Dense32 { return (*Dense32)(tile.Identity[float32](n)) }

// At returns element (i, j).
func (a *Dense32) At(i, j int) float32 { return (*tile.Dense[float32])(a).At(i, j) }

// Set assigns element (i, j).
func (a *Dense32) Set(i, j int, v float32) { (*tile.Dense[float32])(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *Dense32) Clone() *Dense32 { return (*Dense32)((*tile.Dense[float32])(a).Clone()) }

// Mul32 returns the product a·b.
func Mul32(a, b *Dense32) *Dense32 {
	return (*Dense32)(tile.Mul((*tile.Dense[float32])(a), (*tile.Dense[float32])(b)))
}

// FrobeniusNorm32 returns ‖a‖_F.
func FrobeniusNorm32(a *Dense32) float64 { return tile.FrobNorm((*tile.Dense[float32])(a)) }

// QRResidual32 returns ‖A − Q·R‖_F / ‖A‖_F.
func QRResidual32(a, q, r *Dense32) float64 {
	return tile.ResidualQR((*tile.Dense[float32])(a), (*tile.Dense[float32])(q), (*tile.Dense[float32])(r))
}

// OrthoResidual32 returns ‖QᵀQ − I‖_F.
func OrthoResidual32(q *Dense32) float64 { return tile.OrthoResidual((*tile.Dense[float32])(q)) }

// CDense is a row-major dense complex64 matrix — the single-precision
// complex sibling of ZDense, factored by CFactor.
type CDense tile.Dense[complex64]

// NewCDense allocates a zero r×c complex64 matrix.
func NewCDense(r, c int) *CDense { return (*CDense)(tile.NewDense[complex64](r, c)) }

// RandomCDense returns an r×c complex64 matrix with standard normal real
// and imaginary parts.
func RandomCDense(r, c int, seed int64) *CDense {
	return (*CDense)(tile.RandDense[complex64](r, c, seed))
}

// CIdentity returns the n×n complex64 identity.
func CIdentity(n int) *CDense { return (*CDense)(tile.Identity[complex64](n)) }

// At returns element (i, j).
func (a *CDense) At(i, j int) complex64 { return (*tile.Dense[complex64])(a).At(i, j) }

// Set assigns element (i, j).
func (a *CDense) Set(i, j int, v complex64) { (*tile.Dense[complex64])(a).Set(i, j, v) }

// Clone returns a deep copy.
func (a *CDense) Clone() *CDense { return (*CDense)((*tile.Dense[complex64])(a).Clone()) }

// CMul returns the product a·b.
func CMul(a, b *CDense) *CDense {
	return (*CDense)(tile.Mul((*tile.Dense[complex64])(a), (*tile.Dense[complex64])(b)))
}

// CFrobeniusNorm returns ‖a‖_F.
func CFrobeniusNorm(a *CDense) float64 { return tile.FrobNorm((*tile.Dense[complex64])(a)) }

// CQRResidual returns ‖A − Q·R‖_F / ‖A‖_F.
func CQRResidual(a, q, r *CDense) float64 {
	return tile.ResidualQR((*tile.Dense[complex64])(a), (*tile.Dense[complex64])(q), (*tile.Dense[complex64])(r))
}

// COrthoResidual returns ‖QᴴQ − I‖_F.
func COrthoResidual(q *CDense) float64 { return tile.OrthoResidual((*tile.Dense[complex64])(q)) }
