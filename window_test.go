package tiledqr

import (
	"math"
	"strings"
	"testing"

	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
)

// rowsOfG copies rows [r0, r0+k) of a into a fresh matrix — the generic
// form of rowsOf for the windowing tests, which run all four precisions
// through one body.
func rowsOfG[T Scalar](a *Mat[T], r0, k int) *Mat[T] {
	out := NewMat[T](k, a.Cols)
	for i := 0; i < k; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(i, j, a.At(r0+i, j))
		}
	}
	return out
}

// maxUpperDiffG compares two upper triangular factors up to the per-row ±1
// sign ambiguity of a QR factorization (the reflector construction keeps
// the diagonal real in the complex domains too).
func maxUpperDiffG[T Scalar](got, want *Mat[T], n int) float64 {
	var worst float64
	for i := 0; i < n; i++ {
		sign := vec.FromParts[T](1, 0)
		if vec.RealPart(got.At(i, i))*vec.RealPart(want.At(i, i)) < 0 {
			sign = vec.FromParts[T](-1, 0)
		}
		for j := i; j < n; j++ {
			worst = math.Max(worst, vec.Abs(sign*got.At(i, j)-want.At(i, j)))
		}
	}
	return worst
}

// maxDiffG is the entrywise distance between two equally-shaped matrices.
func maxDiffG[T Scalar](got, want *Mat[T]) float64 {
	var worst float64
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			worst = math.Max(worst, vec.Abs(got.At(i, j)-want.At(i, j)))
		}
	}
	return worst
}

// oneShot is a per-precision one-shot reference: factor a, return R and
// the least-squares solution against b.
type oneShot[T Scalar] func(a, b *Mat[T], opt Options) (*Mat[T], *Mat[T], error)

func factorD(a, b *Mat[float64], opt Options) (*Mat[float64], *Mat[float64], error) {
	f, err := Factor(a, opt)
	if err != nil {
		return nil, nil, err
	}
	x, err := f.SolveLS(b)
	if err != nil {
		return nil, nil, err
	}
	return f.R(), x, nil
}

func factorZ(a, b *Mat[complex128], opt Options) (*Mat[complex128], *Mat[complex128], error) {
	f, err := FactorComplex(a, opt)
	if err != nil {
		return nil, nil, err
	}
	x, err := f.SolveLS(b)
	if err != nil {
		return nil, nil, err
	}
	return f.R(), x, nil
}

func factorS(a, b *Mat[float32], opt Options) (*Mat[float32], *Mat[float32], error) {
	f, err := Factor32(a, opt)
	if err != nil {
		return nil, nil, err
	}
	x, err := f.SolveLS(b)
	if err != nil {
		return nil, nil, err
	}
	return f.R(), x, nil
}

func factorC(a, b *Mat[complex64], opt Options) (*Mat[complex64], *Mat[complex64], error) {
	f, err := CFactor(a, opt)
	if err != nil {
		return nil, nil, err
	}
	x, err := f.SolveLS(b)
	if err != nil {
		return nil, nil, err
	}
	return f.R(), x, nil
}

// downdateAgree drives a sliding-window stream far past its window and
// checks that what remains is exactly the QR of the retained rows: R, the
// least-squares solution, and the residual all agree with a one-shot
// factorization over only the last W rows.
func downdateAgree[T Scalar](t *testing.T, kern Kernels, tol float64, factor oneShot[T]) {
	t.Helper()
	const n, nb, ib, nrhs, batch, batches, window = 40, 16, 8, 2, 16, 10, 64
	const m = batch * batches
	a := RandomMat[T](m, n, 11)
	b := RandomMat[T](m, nrhs, 12)
	opt := Options{TileSize: nb, InnerBlock: ib, Kernels: kern, Workers: 2, WindowRows: window}
	s, err := NewStreamOf[T](n, opt)
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < m; r0 += batch {
		if err := s.AppendRHS(rowsOfG(a, r0, batch), rowsOfG(b, r0, batch)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rows() != window {
		t.Fatalf("windowed stream represents %d rows, want %d", s.Rows(), window)
	}

	aTail, bTail := rowsOfG(a, m-window, window), rowsOfG(b, m-window, window)
	refOpt := Options{TileSize: nb, InnerBlock: ib, Kernels: kern, Workers: 2}
	rRef, xRef, err := factor(aTail, bTail, refOpt)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := s.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxUpperDiffG(rs, rRef, n); d > tol {
		t.Errorf("%v: windowed R differs from one-shot over retained rows by %.3e (tol %.0e)", kern, d, tol)
	}
	x, err := s.SolveLS()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiffG(x, xRef); d > tol {
		t.Errorf("%v: windowed LS solution differs by %.3e (tol %.0e)", kern, d, tol)
	}

	// The residual bookkeeping survives downdating: compare against the
	// directly computed ‖A_tail·x − b_tail‖_F. The identity it is derived
	// from (‖b‖² − ‖Qᵀb‖²) cancels, so the bound is looser than tol.
	resid, err := s.ResidualNorm()
	if err != nil {
		t.Fatal(err)
	}
	ax := tile.Mul((*tile.Dense[T])(aTail), (*tile.Dense[T])(x))
	var direct float64
	for i := 0; i < window; i++ {
		for j := 0; j < nrhs; j++ {
			direct += vec.Abs2(ax.At(i, j) - bTail.At(i, j))
		}
	}
	direct = math.Sqrt(direct)
	if math.Abs(resid-direct) > 1e4*tol*(1+direct) {
		t.Errorf("%v: residual %.6e, direct %.6e", kern, resid, direct)
	}
}

// TestDowndateMatchesRecompute is the downdate agreement suite of the
// sliding-window feature: all four precisions × both kernel families.
func TestDowndateMatchesRecompute(t *testing.T) {
	for _, kern := range []Kernels{TT, TS} {
		kern := kern
		t.Run("d/"+kern.String(), func(t *testing.T) { downdateAgree[float64](t, kern, 1e-10, factorD) })
		t.Run("z/"+kern.String(), func(t *testing.T) { downdateAgree[complex128](t, kern, 1e-10, factorZ) })
		t.Run("s/"+kern.String(), func(t *testing.T) { downdateAgree[float32](t, kern, 2e-4, factorS) })
		t.Run("c/"+kern.String(), func(t *testing.T) { downdateAgree[complex64](t, kern, 2e-4, factorC) })
	}
}

// TestDowndateBreakdownRebuild forces the hyperbolic fast path to break
// down — removing so many rows that fewer than n remain makes the
// downdated triangle rank-deficient, which no stable sequence of
// hyperbolic rotations can reach — and checks the stream transparently
// rebuilds from its retained history: the result must match a fresh stream
// fed only the surviving rows, split exactly as the history retains them.
func TestDowndateBreakdownRebuild(t *testing.T) {
	const n, nb, ib, nrhs, batch = 32, 16, 8, 1, 16
	const m = 4 * batch // 64 ingested
	const remove = 41   // leaves 23 < n rows: guaranteed breakdown
	a := RandomDense(m, n, 21)
	b := RandomDense(m, nrhs, 22)
	opt := Options{TileSize: nb, InnerBlock: ib, Workers: 2, WindowRows: RetainAll}
	s, err := NewStream(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < m; r0 += batch {
		if err := s.AppendRHS(rowsOfG(a, r0, batch), rowsOfG(b, r0, batch)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DowndateRows(remove); err != nil {
		t.Fatal(err)
	}
	if s.Rows() != m-remove {
		t.Fatalf("after downdate stream represents %d rows, want %d", s.Rows(), m-remove)
	}

	// The history retains [7-row tail of batch 3, batch 4] after dropping
	// 41 = 2·16 + 9 rows; a fresh stream fed the same two batches performs
	// the identical merge arithmetic.
	ref, err := NewStream(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AppendRHS(rowsOfG(a, remove, m-remove-batch), rowsOfG(b, remove, m-remove-batch)); err != nil {
		t.Fatal(err)
	}
	if err := ref.AppendRHS(rowsOfG(a, m-batch, batch), rowsOfG(b, m-batch, batch)); err != nil {
		t.Fatal(err)
	}
	rs, err := s.R()
	if err != nil {
		t.Fatal(err)
	}
	rRef, err := ref.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiffG(rs, rRef); d > 1e-12 {
		t.Errorf("rebuilt R differs from fresh stream by %.3e", d)
	}
	qs, err := s.QTB()
	if err != nil {
		t.Fatal(err)
	}
	qRef, err := ref.QTB()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiffG(qs, qRef); d > 1e-12 {
		t.Errorf("rebuilt QTB differs from fresh stream by %.3e", d)
	}
}

// TestForgettingClosedForm checks Options.Forget against its closed form:
// after B appends with factor λ, batch i's rows carry weight λ^((B−1−i)/2),
// so the stream must agree with a one-shot factorization of the explicitly
// weighted rows. It also checks the manual Forget method is exactly the
// per-append decay.
func TestForgettingClosedForm(t *testing.T) {
	const n, nb, ib, nrhs, batch, batches = 24, 16, 8, 1, 16, 6
	const m = batch * batches
	const lambda = 0.8
	a := RandomDense(m, n, 31)
	b := RandomDense(m, nrhs, 32)
	opt := Options{TileSize: nb, InnerBlock: ib, Workers: 2}

	fopt := opt
	fopt.Forget = lambda
	s, err := NewStream(n, fopt)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := NewStream(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	for r0 := 0; r0 < m; r0 += batch {
		if err := s.AppendRHS(rowsOfG(a, r0, batch), rowsOfG(b, r0, batch)); err != nil {
			t.Fatal(err)
		}
		if err := manual.Forget(lambda); err != nil {
			t.Fatal(err)
		}
		if err := manual.AppendRHS(rowsOfG(a, r0, batch), rowsOfG(b, r0, batch)); err != nil {
			t.Fatal(err)
		}
	}

	// Closed form: weight batch i by λ^((B−1−i)/2) — the √λ decay applied
	// once per later append — and factor the weighted rows in one shot.
	aw, bw := a.Clone(), b.Clone()
	for i := 0; i < m; i++ {
		w := math.Pow(lambda, float64(batches-1-i/batch)/2)
		for j := 0; j < n; j++ {
			aw.Set(i, j, w*aw.At(i, j))
		}
		for j := 0; j < nrhs; j++ {
			bw.Set(i, j, w*bw.At(i, j))
		}
	}
	f, err := Factor(aw, opt)
	if err != nil {
		t.Fatal(err)
	}
	xRef, err := f.SolveLS(bw)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxUpperDiffG(rs, f.R(), n); d > 1e-10 {
		t.Errorf("forgetful R differs from weighted one-shot by %.3e", d)
	}
	x, err := s.SolveLS()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiffG(x, xRef); d > 1e-10 {
		t.Errorf("forgetful LS solution differs from weighted one-shot by %.3e", d)
	}

	// Options.Forget ≡ Forget() before every append, operation for
	// operation — the two streams must agree to the last bit.
	rManual, err := manual.R()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiffG(rs, rManual); d != 0 {
		t.Errorf("Options.Forget and manual Forget diverge by %.3e", d)
	}
}

// TestWindowFootprintFlat is the memory acceptance test of the sliding
// window: a windowed stream's footprint stays flat (within 10%) from batch
// 10 to batch 100, while a retain-everything stream's grows with history.
func TestWindowFootprintFlat(t *testing.T) {
	const n, nb, ib, batch, window = 64, 32, 8, 32, 128
	opt := Options{TileSize: nb, InnerBlock: ib, Workers: 1}
	wopt := opt
	wopt.WindowRows = window
	windowed, err := NewStream(n, wopt)
	if err != nil {
		t.Fatal(err)
	}
	gopt := opt
	gopt.WindowRows = RetainAll
	growing, err := NewStream(n, gopt)
	if err != nil {
		t.Fatal(err)
	}
	var w10, g10 int
	for i := 1; i <= 100; i++ {
		batchM := RandomDense(batch, n, int64(i))
		if err := windowed.AppendRows(batchM); err != nil {
			t.Fatal(err)
		}
		if err := growing.AppendRows(batchM); err != nil {
			t.Fatal(err)
		}
		if i == 10 {
			w10, g10 = windowed.Footprint(), growing.Footprint()
		}
	}
	w100, g100 := windowed.Footprint(), growing.Footprint()
	if float64(w100) > 1.1*float64(w10) || float64(w100) < 0.9*float64(w10) {
		t.Errorf("windowed footprint not flat: %d scalars after batch 10, %d after batch 100", w10, w100)
	}
	if g100 <= 2*g10 {
		t.Errorf("retain-all footprint should grow with history: %d after batch 10, %d after batch 100", g10, g100)
	}
	if windowed.Rows() != window {
		t.Errorf("windowed stream represents %d rows, want %d", windowed.Rows(), window)
	}
}

// TestStreamOptionValidation covers the descriptive errors of the new
// Options knobs: bad stream values are rejected at construction, and
// one-shot factorizations reject the stream-only fields outright.
func TestStreamOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  Options
		want string
	}{
		{"forget above one", Options{Forget: 1.5}, "Forget"},
		{"forget negative", Options{Forget: -0.1}, "Forget"},
		{"window negative", Options{WindowRows: -2}, "WindowRows"},
	}
	for _, tc := range bad {
		if _, err := NewStream(16, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: NewStream err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	a := RandomDense(32, 16, 1)
	if _, err := Factor(a, Options{WindowRows: 8}); err == nil || !strings.Contains(err.Error(), "streams") {
		t.Errorf("Factor with WindowRows: err = %v, want stream-only rejection", err)
	}
	if _, err := Factor(a, Options{Forget: 0.5}); err == nil || !strings.Contains(err.Error(), "streams") {
		t.Errorf("Factor with Forget: err = %v, want stream-only rejection", err)
	}
}

// TestDowndateErrors covers DowndateRows/Forget misuse: each call must
// fail descriptively and leave the stream fully usable.
func TestDowndateErrors(t *testing.T) {
	plain, err := NewStream(16, Options{TileSize: 16, InnerBlock: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.AppendRows(RandomDense(8, 16, 1)); err != nil {
		t.Fatal(err)
	}
	if err := plain.DowndateRows(4); err == nil || !strings.Contains(err.Error(), "WindowRows") {
		t.Errorf("downdate without retention: err = %v, want WindowRows hint", err)
	}

	s, err := NewStream(16, Options{TileSize: 16, InnerBlock: 8, Workers: 1, WindowRows: RetainAll})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRows(RandomDense(8, 16, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.DowndateRows(0); err == nil {
		t.Error("DowndateRows(0) should fail")
	}
	if err := s.DowndateRows(9); err == nil {
		t.Error("DowndateRows beyond represented rows should fail")
	}
	if err := s.Forget(0); err == nil {
		t.Error("Forget(0) should fail")
	}
	if err := s.Forget(1.5); err == nil {
		t.Error("Forget(1.5) should fail")
	}
	if err := s.Forget(1); err != nil {
		t.Errorf("Forget(1) is a no-op, got %v", err)
	}
	// The misuse above must not have poisoned anything.
	if err := s.AppendRows(RandomDense(8, 16, 3)); err != nil {
		t.Errorf("stream unusable after rejected calls: %v", err)
	}
	if err := s.DowndateRows(8); err != nil {
		t.Errorf("valid downdate failed: %v", err)
	}
	if s.Rows() != 8 {
		t.Errorf("rows = %d, want 8", s.Rows())
	}
}
