module tiledqr

go 1.23.0
