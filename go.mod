module tiledqr

go 1.24.0
