package tiledqr

// StreamQR32 is the float32 stream instantiation — an alias of
// Stream[float32]: half the resident-state memory and memory traffic of
// StreamQR, at single-precision accuracy (~1e-6 relative). See Stream for
// the algorithm, windowing, option and failure semantics.
//
// Deprecated: use Stream[float32] (or keep using this alias; they are the
// same type). New stream capabilities land on the generic Stream.
type StreamQR32 = Stream[float32]

// NewStream32 creates a float32 streaming factorization for rows with n
// columns.
func NewStream32(n int, opt Options) (*StreamQR32, error) {
	return NewStreamOf[float32](n, opt)
}
