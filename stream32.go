package tiledqr

import (
	"context"

	"tiledqr/internal/stream"
	"tiledqr/internal/tile"
)

// StreamQR32 is the float32 instantiation of the streaming TSQR core: half
// the resident-state memory and memory traffic of StreamQR, at
// single-precision accuracy (~1e-6 relative). See StreamQR for the
// algorithm, option and failure semantics.
type StreamQR32 struct {
	c *stream.Core[float32]
}

// NewStream32 creates a float32 streaming factorization for rows with n
// columns.
func NewStream32(n int, opt Options) (*StreamQR32, error) {
	c, err := newStreamCore[float32](n, opt)
	if err != nil {
		return nil, err
	}
	return &StreamQR32{c: c}, nil
}

// AppendRows merges a batch of rows (r×n, any r ≥ 1) into the resident
// triangle. The batch is not modified.
func (s *StreamQR32) AppendRows(batch *Dense32) error {
	return streamAppend(nil, s.c, (*tile.Dense[float32])(batch), nil, false)
}

// AppendRowsCtx is AppendRows under a cancellation context (see
// StreamQR.AppendRowsCtx).
func (s *StreamQR32) AppendRowsCtx(ctx context.Context, batch *Dense32) error {
	return streamAppend(ctx, s.c, (*tile.Dense[float32])(batch), nil, false)
}

// AppendRHS merges a batch of rows together with the matching right-hand
// side rows, maintaining the top n rows of Qᵀb for SolveLS.
func (s *StreamQR32) AppendRHS(batch, rhs *Dense32) error {
	return streamAppend(nil, s.c, (*tile.Dense[float32])(batch), (*tile.Dense[float32])(rhs), true)
}

// AppendRHSCtx is AppendRHS under a cancellation context (see
// StreamQR.AppendRowsCtx).
func (s *StreamQR32) AppendRHSCtx(ctx context.Context, batch, rhs *Dense32) error {
	return streamAppend(ctx, s.c, (*tile.Dense[float32])(batch), (*tile.Dense[float32])(rhs), true)
}

// Err returns the stream's sticky failure (see StreamQR.Err).
func (s *StreamQR32) Err() error { return s.c.Err() }

// R returns the n×n upper triangular factor of all rows ingested so far.
// After a failed append, R returns the append's original error.
func (s *StreamQR32) R() (*Dense32, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	n := s.c.N()
	r := NewDense32(n, n)
	s.c.CopyR(r.Data, r.Stride)
	return r, nil
}

// QTB returns the retained top n rows of Qᵀb (n×nrhs), or nil when the
// stream tracks no right-hand side. After a failed append, QTB returns the
// append's original error.
func (s *StreamQR32) QTB() (*Dense32, error) {
	if err := s.c.Err(); err != nil {
		return nil, err
	}
	if s.c.NRHS() == 0 {
		return nil, nil
	}
	q := NewDense32(s.c.N(), s.c.NRHS())
	s.c.CopyQTB(q.Data, q.Stride)
	return q, nil
}

// SolveLS returns the n×nrhs least-squares solution over every row
// ingested so far. Requires right-hand-side tracking and at least n
// ingested rows.
func (s *StreamQR32) SolveLS() (*Dense32, error) {
	x := NewDense32(s.c.N(), max(s.c.NRHS(), 1))
	if err := s.c.SolveLS(x.Data, x.Stride); err != nil {
		return nil, err
	}
	return x, nil
}

// Rows returns the total number of rows ingested.
func (s *StreamQR32) Rows() int64 { return s.c.Rows() }

// N returns the column count of the streamed system.
func (s *StreamQR32) N() int { return s.c.N() }

// ResidualNorm returns the running least-squares residual ‖b − A·X‖_F over
// all tracked right-hand-side columns (0 when no RHS is tracked). After a
// failed append, ResidualNorm returns the append's original error.
func (s *StreamQR32) ResidualNorm() (float64, error) {
	if err := s.c.Err(); err != nil {
		return 0, err
	}
	return s.c.ResidualNorm(), nil
}

// Footprint returns the number of float32 values retained across appends.
func (s *StreamQR32) Footprint() int { return s.c.Footprint() }
