package tiledqr

import (
	"math"
	"strings"
	"testing"
)

// The fuzz targets harden the public entry points against adversarial
// inputs: hostile option combinations (huge/negative/inverted sizes,
// out-of-range enums) and hostile matrix data (NaN, Inf, degenerate and
// empty shapes). The invariant is uniform — a bad input produces a
// descriptive error, never a panic or an index out of range — plus, when
// a factorization is accepted, basic result sanity. Seed corpora live
// under testdata/fuzz/; CI runs each target briefly via `make fuzz-smoke`.

// FuzzOptionsValidate throws arbitrary Options at validation and at a
// small factorization. Every combination must either error or factor
// successfully; no combination may panic.
func FuzzOptionsValidate(f *testing.F) {
	f.Add(8, 4, 1, 0, 0, uint8(0), uint8(0), false)
	f.Add(0, 0, 0, 0, 0, uint8(0), uint8(0), false)      // all defaults
	f.Add(4, 8, 1, 0, 0, uint8(0), uint8(0), true)       // ib > nb: must error
	f.Add(1<<20, 4, 2, 0, 0, uint8(1), uint8(1), false)  // huge nb
	f.Add(-5, -3, -2, -1, -1, uint8(7), uint8(1), false) // negative everything
	f.Add(8, 8, 1, 3, 2, uint8(6), uint8(0), true)       // PlasmaTree with BS
	f.Add(8, 4, 1, 0, 2, uint8(5), uint8(1), false)      // Grasap
	f.Add(16, 16, 4, 200, 0, uint8(7), uint8(0), false)  // HadriTree, BS > p
	f.Fuzz(func(t *testing.T, nb, ib, workers, bs, grasapK int, alg, kern uint8, check bool) {
		opt := Options{
			// The fuzzed byte covers the full concrete-algorithm range;
			// AlgorithmAuto is excluded so the target stays hermetic (no
			// per-host calibration in a fuzz loop).
			Algorithm:   Algorithm(int(alg) % int(AlgorithmAuto)),
			Kernels:     Kernels(int(kern) % 2),
			TileSize:    nb,
			InnerBlock:  ib,
			Workers:     workers % 4,
			BS:          bs,
			GrasapK:     grasapK,
			CheckHealth: check,
		}
		a := RandomDense(12, 7, 42)
		f64, err := Factor(a, opt)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "tiledqr:") {
				t.Errorf("error %q does not carry the package prefix", err)
			}
			return
		}
		// Accepted options must produce a structurally sane result.
		r := f64.R()
		if r.Rows != 7 || r.Cols != 7 {
			t.Fatalf("R is %d×%d, want 7×7", r.Rows, r.Cols)
		}
		for _, v := range r.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("finite input factored to a non-finite R")
			}
		}
	})
}

// FuzzFactor throws adversarial matrices at Factor: fuzzed shape (down to
// empty and 1×n), fuzzed tile geometry, and raw IEEE-754 bit patterns
// (NaN payloads, infinities, subnormals) planted in the data. Factor must
// never panic; with CheckHealth a non-finite input must be rejected with
// a descriptive error.
func FuzzFactor(f *testing.F) {
	nan := math.Float64bits(math.NaN())
	inf := math.Float64bits(math.Inf(1))
	f.Add(uint8(12), uint8(7), uint8(8), uint8(4), uint64(0x3ff0000000000000), uint64(0), false)
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint64(0), uint64(0), false) // empty matrix
	f.Add(uint8(1), uint8(17), uint8(8), uint8(4), nan, uint64(3), true)       // 1×n with NaN
	f.Add(uint8(20), uint8(12), uint8(255), uint8(1), inf, uint64(7), true)    // huge nb, Inf
	f.Add(uint8(9), uint8(9), uint8(3), uint8(200), uint64(1), uint64(1), false)
	f.Add(uint8(16), uint8(8), uint8(8), uint8(4), nan^1, uint64(11), false) // NaN payload, checks off
	f.Fuzz(func(t *testing.T, m, n, nb, ib uint8, bits, pos uint64, check bool) {
		opt := Options{
			TileSize:    int(nb),
			InnerBlock:  int(ib),
			Workers:     1, // deterministic inline execution keeps the loop fast
			CheckHealth: check,
		}
		var a *Dense
		planted := math.Float64frombits(bits)
		if m > 0 && n > 0 {
			a = RandomDense(int(m), int(n), 5)
			a.Data[int(pos%uint64(len(a.Data)))] = planted
		}
		fz, err := Factor(a, opt)
		nonFinite := a != nil && (math.IsNaN(planted) || math.IsInf(planted, 0))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "tiledqr:") {
				t.Errorf("error %q does not carry the package prefix", err)
			}
			return
		}
		if a == nil {
			t.Fatal("Factor accepted a nil matrix")
		}
		if check && nonFinite {
			t.Fatalf("CheckHealth accepted a matrix containing %v", planted)
		}
		if check {
			for _, v := range fz.R().Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("CheckHealth passed but R has a non-finite entry")
				}
			}
		}
	})
}
