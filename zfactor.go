package tiledqr

import (
	"fmt"
	"sync"

	"tiledqr/internal/core"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
	"tiledqr/internal/vec"
	"tiledqr/internal/work"
	"tiledqr/internal/zkernel"
)

// ZFactorization is the complex128 counterpart of Factorization. The paper
// evaluates double complex alongside double because complex arithmetic has
// a 4× higher computation-to-communication ratio, which favours the highly
// parallel TT algorithms (Section 4).
type ZFactorization struct {
	grid  tile.Grid
	mat   *tile.ZMatrix
	dag   *core.DAG
	list  core.List
	tg    [][]complex128
	t2    [][]complex128
	ib    int
	opt   Options
	trace *sched.Trace

	workPool sync.Pool // scratch slices for ApplyQ/ApplyQH/SolveLS
}

// getWork fetches a pooled scratch slice of at least n elements; putWork
// returns it. Steady-state Q applications allocate nothing.
func (f *ZFactorization) getWork(n int) []complex128 {
	if w, ok := f.workPool.Get().(*[]complex128); ok && len(*w) >= n {
		return *w
	}
	return make([]complex128, n)
}

func (f *ZFactorization) putWork(w []complex128) {
	f.workPool.Put(&w)
}

// FactorComplex computes the tiled QR factorization A = Q·R of an m×n
// complex matrix. A is not modified.
func FactorComplex(a *ZDense, opt Options) (*ZFactorization, error) {
	opt = opt.withDefaults()
	if a == nil || a.Rows < 1 || a.Cols < 1 {
		return nil, fmt.Errorf("tiledqr: cannot factor an empty matrix")
	}
	g := tile.NewGrid(a.Rows, a.Cols, opt.TileSize)
	if err := opt.validate(g.P); err != nil {
		return nil, err
	}
	list, err := core.Generate(opt.Algorithm.core(), g.P, g.Q, opt.coreOptions())
	if err != nil {
		return nil, err
	}
	f := &ZFactorization{
		grid: g,
		mat:  tile.ZFromDense((*tile.ZDense)(a), opt.TileSize),
		dag:  core.BuildDAG(list, opt.Kernels.core()),
		list: list,
		ib:   opt.InnerBlock,
		opt:  opt,
	}
	f.allocT()
	work := work.Workspaces[complex128](work.WorkersOrDefault(opt.Workers),
		zkernel.WorkLen(opt.TileSize, f.ib))
	trace, err := sched.Run(f.dag, sched.Options{Workers: opt.Workers, Trace: opt.Trace},
		func(t int32, w int) { f.exec(t, work[w]) })
	if err != nil {
		return nil, err
	}
	f.trace = trace
	return f, nil
}

func (f *ZFactorization) allocT() {
	p, q := f.grid.P, f.grid.Q
	f.tg = make([][]complex128, p*q)
	f.t2 = make([][]complex128, p*q)
	for _, t := range f.dag.Tasks {
		switch t.Kind {
		case core.KGEQRT:
			f.tg[f.tidx(t.I, t.K)] = make([]complex128, f.ib*f.grid.TileCols(t.K-1))
		case core.KTSQRT, core.KTTQRT:
			f.t2[f.tidx(t.I, t.K)] = make([]complex128, f.ib*f.grid.TileCols(t.K-1))
		}
	}
}

func (f *ZFactorization) tidx(i, k int) int { return (i-1)*f.grid.Q + (k - 1) }

func (f *ZFactorization) exec(t int32, work []complex128) {
	task := f.dag.Tasks[t]
	switch task.Kind {
	case core.KGEQRT:
		a := f.mat.Tile(task.I-1, task.K-1)
		zkernel.GEQRT(a.Rows, a.Cols, f.ib, a.Data, a.Stride,
			f.tg[f.tidx(task.I, task.K)], a.Cols, work)
	case core.KUNMQR:
		v := f.mat.Tile(task.I-1, task.K-1)
		c := f.mat.Tile(task.I-1, task.J-1)
		zkernel.UNMQR(true, v.Rows, min(v.Rows, v.Cols), f.ib, v.Data, v.Stride,
			f.tg[f.tidx(task.I, task.K)], v.Cols, c.Data, c.Stride, c.Cols, work)
	case core.KTSQRT, core.KTTQRT:
		a := f.mat.Tile(task.Piv-1, task.K-1)
		b := f.mat.Tile(task.I-1, task.K-1)
		m, l := b.Rows, 0
		if task.Kind == core.KTTQRT {
			m = min(b.Rows, a.Cols)
			l = m
		}
		zkernel.TPQRT(m, a.Cols, l, f.ib, a.Data, a.Stride, b.Data, b.Stride,
			f.t2[f.tidx(task.I, task.K)], a.Cols, work)
	case core.KTSMQR, core.KTTMQR:
		v := f.mat.Tile(task.I-1, task.K-1)
		c1 := f.mat.Tile(task.Piv-1, task.J-1)
		c2 := f.mat.Tile(task.I-1, task.J-1)
		kRef := f.grid.TileCols(task.K - 1)
		m, l := v.Rows, 0
		if task.Kind == core.KTTMQR {
			m = min(v.Rows, kRef)
			l = m
		}
		zkernel.TPMQRT(true, m, kRef, l, f.ib, v.Data, v.Stride,
			f.t2[f.tidx(task.I, task.K)], kRef,
			c1.Data, c1.Stride, c2.Data, c2.Stride, c2.Cols, work)
	default:
		panic(fmt.Sprintf("tiledqr: unknown task kind %v", task.Kind))
	}
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *ZFactorization) R() *ZDense {
	k := min(f.grid.M, f.grid.N)
	r := NewZDense(k, f.grid.N)
	nb := f.grid.NB
	for i := 0; i < k; i++ {
		for j := i; j < f.grid.N; j++ {
			r.Set(i, j, f.mat.Tile(i/nb, j/nb).At(i%nb, j%nb))
		}
	}
	return r
}

// ApplyQH overwrites b (m×nrhs) with Qᴴ·b.
func (f *ZFactorization) ApplyQH(b *ZDense) error { return f.apply(b, true) }

// ApplyQ overwrites b (m×nrhs) with Q·b.
func (f *ZFactorization) ApplyQ(b *ZDense) error { return f.apply(b, false) }

func (f *ZFactorization) apply(b *ZDense, trans bool) error {
	if b == nil {
		return fmt.Errorf("tiledqr: ApplyQ: b must not be nil")
	}
	if b.Rows != f.grid.M {
		return fmt.Errorf("tiledqr: ApplyQ: b has %d rows, want %d", b.Rows, f.grid.M)
	}
	bd := (*tile.ZDense)(b)
	nrhs := b.Cols
	work := f.getWork(f.ib * max(nrhs, 1))
	defer f.putWork(work)
	rowView := func(i int) *tile.ZDense {
		return bd.View((i-1)*f.grid.NB, 0, f.grid.TileRows(i-1), nrhs)
	}
	applyOne := func(task core.Task) {
		switch task.Kind {
		case core.KGEQRT:
			v := f.mat.Tile(task.I-1, task.K-1)
			c := rowView(task.I)
			zkernel.UNMQR(trans, v.Rows, min(v.Rows, v.Cols), f.ib, v.Data, v.Stride,
				f.tg[f.tidx(task.I, task.K)], v.Cols, c.Data, c.Stride, nrhs, work)
		case core.KTSQRT, core.KTTQRT:
			v := f.mat.Tile(task.I-1, task.K-1)
			c1 := rowView(task.Piv)
			c2 := rowView(task.I)
			kRef := f.grid.TileCols(task.K - 1)
			m, l := v.Rows, 0
			if task.Kind == core.KTTQRT {
				m = min(v.Rows, kRef)
				l = m
			}
			zkernel.TPMQRT(trans, m, kRef, l, f.ib, v.Data, v.Stride,
				f.t2[f.tidx(task.I, task.K)], kRef,
				c1.Data, c1.Stride, c2.Data, c2.Stride, nrhs, work)
		}
	}
	if trans {
		for _, task := range f.dag.Tasks {
			applyOne(task)
		}
	} else {
		for t := len(f.dag.Tasks) - 1; t >= 0; t-- {
			applyOne(f.dag.Tasks[t])
		}
	}
	return nil
}

// Q returns the full m×m unitary factor.
func (f *ZFactorization) Q() *ZDense {
	q := ZIdentity(f.grid.M)
	if err := f.ApplyQ(q); err != nil {
		panic(err)
	}
	return q
}

// ThinQ returns the first min(m,n) columns of Q.
func (f *ZFactorization) ThinQ() *ZDense {
	k := min(f.grid.M, f.grid.N)
	e := NewZDense(f.grid.M, k)
	for i := 0; i < k; i++ {
		e.Set(i, i, 1)
	}
	if err := f.ApplyQ(e); err != nil {
		panic(err)
	}
	return e
}

// SolveLS solves min‖A·x − b‖₂ (m ≥ n) for each column of b.
func (f *ZFactorization) SolveLS(b *ZDense) (*ZDense, error) {
	m, n := f.grid.M, f.grid.N
	if m < n {
		return nil, fmt.Errorf("tiledqr: SolveLS needs m ≥ n (have %d×%d)", m, n)
	}
	if b == nil {
		return nil, fmt.Errorf("tiledqr: SolveLS: b must not be nil")
	}
	if b.Rows != m {
		return nil, fmt.Errorf("tiledqr: SolveLS: b has %d rows, want %d", b.Rows, m)
	}
	qtb := b.Clone()
	if err := f.ApplyQH(qtb); err != nil {
		return nil, err
	}
	r := f.R()
	rd := (*tile.ZDense)(r)
	x := NewZDense(n, b.Cols)
	// Row-oriented back-substitution (shared with the streaming path).
	wbuf := f.getWork(n)
	defer f.putWork(wbuf)
	if err := work.SolveUpper(n, b.Cols, rd.Data, rd.Stride, qtb.Data, qtb.Stride,
		x.Data, x.Stride, wbuf[:n], vec.ZDotu); err != nil {
		return nil, err
	}
	return x, nil
}

// Trace returns the execution trace (nil unless Options.Trace was set).
func (f *ZFactorization) Trace() *sched.Trace { return f.trace }

// GanttChart renders an ASCII Gantt chart of the traced execution.
// Requires Options.Trace.
func (f *ZFactorization) GanttChart(width int) string {
	if f.trace == nil || f.trace.Spans == nil {
		return "(run with Options.Trace to record a Gantt chart)\n"
	}
	return f.trace.Gantt(f.dag, width)
}

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Options.Trace.
func (f *ZFactorization) Utilization() sched.Utilization {
	if f.trace == nil {
		return sched.Utilization{}
	}
	return f.trace.Utilization()
}

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *ZFactorization) TaskCount() int { return f.dag.NumTasks() }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *ZFactorization) Grid() (p, q, nb int) { return f.grid.P, f.grid.Q, f.grid.NB }
