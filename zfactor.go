package tiledqr

import (
	"context"

	"tiledqr/internal/engine"
	"tiledqr/internal/sched"
	"tiledqr/internal/tile"
)

// ZFactorization is the complex128 instantiation of the generic engine.
// The paper evaluates double complex alongside double because complex
// arithmetic has a 4× higher computation-to-communication ratio, which
// favours the highly parallel TT algorithms (Section 4).
type ZFactorization struct {
	e *engine.Factorization[complex128]
}

// FactorComplex computes the tiled QR factorization A = Q·R of an m×n
// complex matrix. A is not modified.
func FactorComplex(a *ZDense, opt Options) (*ZFactorization, error) {
	return FactorComplexCtx(nil, a, opt)
}

// FactorComplexCtx is FactorComplex under a cancellation context (see
// FactorCtx).
func FactorComplexCtx(ctx context.Context, a *ZDense, opt Options) (*ZFactorization, error) {
	e, err := factorEngine(ctx, (*tile.Dense[complex128])(a), opt)
	if err != nil {
		return nil, err
	}
	return &ZFactorization{e: e}, nil
}

// ZFactorInto factors a into f, reusing f's storage when shape and
// structural options match the previous factorization (see FactorInto).
// f may be a zero &ZFactorization{}.
func ZFactorInto(f *ZFactorization, a *ZDense, opt Options) error {
	return ZFactorIntoCtx(nil, f, a, opt)
}

// ZFactorIntoCtx is ZFactorInto under a cancellation context (see
// FactorIntoCtx).
func ZFactorIntoCtx(ctx context.Context, f *ZFactorization, a *ZDense, opt Options) error {
	if f.e == nil {
		f.e = new(engine.Factorization[complex128])
	}
	return factorEngineInto(ctx, f.e, (*tile.Dense[complex128])(a), opt)
}

// Refactor re-runs the factorization over new matrix data with the same
// options, reusing every internal buffer when a has the previous shape.
// Steady-state Refactor allocates O(1).
func (f *ZFactorization) Refactor(a *ZDense) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Refactor((*tile.Dense[complex128])(a))
}

// RefactorCtx is Refactor under a cancellation context (see FactorCtx).
func (f *ZFactorization) RefactorCtx(ctx context.Context, a *ZDense) error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.RefactorCtx(ctx, (*tile.Dense[complex128])(a))
}

// Err returns the cause of the last failed or cancelled factorization
// attempt, nil while the factorization is valid.
func (f *ZFactorization) Err() error {
	if f.e == nil {
		return errRefactorEmpty
	}
	return f.e.Err()
}

// R returns the min(m,n)×n upper triangular (trapezoidal) factor.
func (f *ZFactorization) R() *ZDense { return (*ZDense)(f.e.R()) }

// ApplyQH overwrites b (m×nrhs) with Qᴴ·b.
func (f *ZFactorization) ApplyQH(b *ZDense) error {
	return f.e.Apply(nil, (*tile.Dense[complex128])(b), true)
}

// ApplyQHCtx is ApplyQH under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *ZFactorization) ApplyQHCtx(ctx context.Context, b *ZDense) error {
	return f.e.Apply(ctx, (*tile.Dense[complex128])(b), true)
}

// ApplyQ overwrites b (m×nrhs) with Q·b.
func (f *ZFactorization) ApplyQ(b *ZDense) error {
	return f.e.Apply(nil, (*tile.Dense[complex128])(b), false)
}

// ApplyQCtx is ApplyQ under a cancellation context; on cancellation b is
// partially transformed and must be discarded.
func (f *ZFactorization) ApplyQCtx(ctx context.Context, b *ZDense) error {
	return f.e.Apply(ctx, (*tile.Dense[complex128])(b), false)
}

// Q returns the full m×m unitary factor.
func (f *ZFactorization) Q() *ZDense { return (*ZDense)(f.e.Q()) }

// ThinQ returns the first min(m,n) columns of Q.
func (f *ZFactorization) ThinQ() *ZDense { return (*ZDense)(f.e.ThinQ()) }

// SolveLS solves min‖A·x − b‖₂ (m ≥ n) for each column of b.
func (f *ZFactorization) SolveLS(b *ZDense) (*ZDense, error) {
	return f.SolveLSCtx(nil, b)
}

// SolveLSCtx is SolveLS under a cancellation context (see FactorCtx).
func (f *ZFactorization) SolveLSCtx(ctx context.Context, b *ZDense) (*ZDense, error) {
	x, err := f.e.SolveLS(ctx, (*tile.Dense[complex128])(b))
	if err != nil {
		return nil, err
	}
	return (*ZDense)(x), nil
}

// Trace returns the execution trace (nil unless Options.Trace was set).
func (f *ZFactorization) Trace() *sched.Trace { return f.e.Trace() }

// GanttChart renders an ASCII Gantt chart of the traced execution.
// Requires Options.Trace.
func (f *ZFactorization) GanttChart(width int) string { return f.e.GanttChart(width) }

// Utilization returns per-worker busy fractions and overall parallel
// efficiency of the traced execution. Requires Options.Trace.
func (f *ZFactorization) Utilization() sched.Utilization { return f.e.Utilization() }

// TaskCount returns the number of kernel tasks the factorization executed.
func (f *ZFactorization) TaskCount() int { return f.e.TaskCount() }

// Grid returns the tile grid dimensions (p×q) and tile size.
func (f *ZFactorization) Grid() (p, q, nb int) { return f.e.Grid() }
