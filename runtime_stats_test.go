package tiledqr

import (
	"testing"
)

// TestRuntimeStats exercises the public stats surface: worker count, the
// idle state, and the lifecycle flags, before and after real work.
func TestRuntimeStats(t *testing.T) {
	rt := NewRuntime(3)
	defer rt.Close()
	st := rt.Stats()
	if st.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", st.Workers)
	}
	if st.QueuedTasks != 0 || st.InFlightJobs != 0 || st.Draining || st.Closed {
		t.Fatalf("idle runtime stats %+v", st)
	}
	// Run a factorization on this runtime; afterwards it is idle again.
	a := RandomDense(64, 32, 7)
	if _, err := Factor(a, Options{Runtime: rt}); err != nil {
		t.Fatal(err)
	}
	if st = rt.Stats(); st.QueuedTasks != 0 || st.InFlightJobs != 0 {
		t.Fatalf("post-factor stats %+v, want idle", st)
	}
}

func TestRuntimeStatsClosed(t *testing.T) {
	rt := NewRuntime(2)
	rt.Close()
	if st := rt.Stats(); !st.Closed {
		t.Fatalf("closed runtime stats %+v, want Closed", st)
	}
}

// TestNewRuntimeWorkersEnv checks the TILEDQR_WORKERS sizing override on the
// public constructor.
func TestNewRuntimeWorkersEnv(t *testing.T) {
	t.Setenv("TILEDQR_WORKERS", "2")
	rt := NewRuntime(0)
	defer rt.Close()
	if rt.Workers() != 2 {
		t.Fatalf("NewRuntime(0).Workers() = %d with TILEDQR_WORKERS=2", rt.Workers())
	}
}
